//! The worker loop: Algorithm 1 of the paper, one OS thread per worker.

use crate::config::{Algorithm, TrainConfig};
use crate::profile::{OpKind, Profiler};
use cdsgd_compress::{Compressed, GradientCompressor, TwoBitQuantizer};

use crate::supervise::PoisonBarrier;
use cdsgd_data::{augment, Batch, Dataset};
use cdsgd_nn::{Layer, Mode, Sequential, SoftmaxCrossEntropy};
use cdsgd_ps::{NetError, ParamClient, PendingPull, RingMember};
use cdsgd_tensor::SmallRng64;
use crossbeam::channel::Sender;
use std::sync::Arc;

/// What a worker reports at the end of each epoch.
#[derive(Debug)]
pub(crate) struct EpochReport {
    pub worker: usize,
    pub epoch: usize,
    pub loss_sum: f64,
    pub acc_sum: f64,
    pub batches: usize,
    /// Test accuracy of the *global* weights; only worker 0 evaluates.
    pub test_acc: Option<f32>,
    /// Final global weights — sent by worker 0 on the last epoch of
    /// server-less algorithms (AR-SGD), where the trainer cannot snapshot
    /// a parameter server.
    pub final_weights: Option<Vec<Vec<f32>>>,
}

/// Everything a worker thread needs.
pub(crate) struct WorkerArgs {
    pub id: usize,
    pub cfg: TrainConfig,
    pub model: Sequential,
    pub shard: Dataset,
    /// Test set; `Some` only for worker 0.
    pub test: Option<Dataset>,
    /// Connection to the parameter server — in-process, loopback, or TCP;
    /// the worker is agnostic.
    pub client: Box<dyn ParamClient>,
    /// Ring handle for the all-reduce algorithm (AR-SGD); `None` for the
    /// PS-based algorithms.
    pub ring: Option<RingMember>,
    pub iters_per_epoch: usize,
    /// Epoch rendezvous with the trainer; poisoned by the supervisor when
    /// another worker is lost, so `wait` is fallible.
    pub barrier: Arc<PoisonBarrier>,
    pub report: Sender<EpochReport>,
    /// When present, record wall-clock op intervals.
    pub profiler: Option<Profiler>,
}

/// Per-algorithm knobs resolved once.
struct AlgoState {
    delayed: bool,
    local_lr: f32,
    warmup: u64,
    dc_lambda: f32,
    /// `Some(H)` for Local SGD: H local steps per synchronization.
    sync_period: Option<usize>,
    compressor: Option<Box<dyn GradientCompressor>>,
}

impl AlgoState {
    fn new(algo: &Algorithm) -> Self {
        match algo {
            Algorithm::SSgd => Self {
                delayed: false,
                local_lr: 0.0,
                warmup: 0,
                dc_lambda: 0.0,
                sync_period: None,
                compressor: None,
            },
            Algorithm::OdSgd { local_lr } => Self {
                delayed: true,
                local_lr: *local_lr,
                warmup: 0,
                dc_lambda: 0.0,
                sync_period: None,
                compressor: None,
            },
            Algorithm::BitSgd { threshold } => Self {
                delayed: false,
                local_lr: 0.0,
                warmup: 0,
                dc_lambda: 0.0,
                sync_period: None,
                compressor: Some(Box::new(TwoBitQuantizer::new(*threshold))),
            },
            Algorithm::CdSgd {
                local_lr,
                codec,
                warmup,
                dc_lambda,
                ..
            } => Self {
                delayed: true,
                local_lr: *local_lr,
                warmup: *warmup as u64,
                dc_lambda: *dc_lambda,
                sync_period: None,
                compressor: Some(codec.build()),
            },
            Algorithm::ArSgd => Self {
                delayed: false,
                local_lr: 0.0,
                warmup: 0,
                dc_lambda: 0.0,
                sync_period: None,
                compressor: None,
            },
            Algorithm::LocalSgd {
                local_lr,
                sync_period,
            } => {
                assert!(*sync_period >= 1, "sync period must be at least 1");
                Self {
                    delayed: false,
                    local_lr: *local_lr,
                    warmup: 0,
                    dc_lambda: 0.0,
                    sync_period: Some(*sync_period),
                    compressor: None,
                }
            }
        }
    }

    /// Should round `r` (global, 0-based) push a compressed payload?
    fn compresses(&self, algo: &Algorithm, r: u64) -> bool {
        match algo {
            Algorithm::SSgd
            | Algorithm::OdSgd { .. }
            | Algorithm::LocalSgd { .. }
            | Algorithm::ArSgd => false,
            Algorithm::BitSgd { .. } => true,
            Algorithm::CdSgd { k, .. } => {
                if r < self.warmup {
                    false
                } else {
                    let count = r - self.warmup;
                    !count.is_multiple_of(*k as u64)
                }
            }
        }
    }
}

/// Run one worker to completion. See the crate docs for the exact
/// correspondence with the paper's Algorithm 1. A dead server or broken
/// connection surfaces as `Err`, not a panic.
pub(crate) fn run_worker(mut a: WorkerArgs) -> Result<(), NetError> {
    let loss_fn = SoftmaxCrossEntropy;
    let mut st = AlgoState::new(&a.cfg.algo);
    let num_keys = a.model.param_sizes().len();
    let mut rng =
        SmallRng64::new(a.cfg.seed ^ (a.id as u64 + 1).wrapping_mul(0xA076_1D64_78BD_642F));
    // Payload storage shared with the server: buffers it recycles after
    // decoding our pushes come back to us through this pool.
    let pool = a.client.pool().clone();

    // `base` is the most recently pulled global weights (initially the
    // shared init). For blocking algorithms the model always holds `base`;
    // for delayed algorithms the model holds the local weights built on
    // top of it. Entries are `Arc` snapshots shared with the server and
    // every same-version puller — adopting a pull is a pointer move.
    // (AR-SGD has no server and keeps its globals in the model directly.)
    let mut base: Vec<Arc<[f32]>> = a.model.export_params().into_iter().map(Arc::from).collect();
    let mut round: u64 = 0;
    // Outstanding async pulls (delayed algorithms): fired at the end of
    // round r−1 for version r, collected when round r's local update
    // needs them — so the transfer overlaps this round's FP/BP, exactly
    // like MXNet's asynchronously-scheduled pull ops.
    let mut pending_pulls: Option<Vec<PendingPull>> = None;
    // Local SGD state: accumulated gradients since the last sync, and the
    // number of completed synchronizations (the server round counter).
    let mut local_acc: Option<Vec<Vec<f32>>> = None;
    let mut syncs: u64 = 0;
    // Per-iteration scratch, allocated once and reused every round.
    let mut grads: Vec<Vec<f32>> = Vec::new();
    let mut dc_grads: Vec<Vec<f32>> = Vec::new();
    let mut w_loc: Vec<Vec<f32>> = Vec::new();
    let mut mean: Vec<Vec<f32>> = Vec::new();
    let mut saved: Vec<Vec<f32>> = Vec::new();
    let mut payloads: Vec<Compressed> = Vec::new();

    for epoch in 0..a.cfg.epochs {
        let mut shard = a.shard.clone();
        shard.shuffle(&mut rng);
        let mut loss_sum = 0.0f64;
        let mut acc_sum = 0.0f64;
        let mut batches = 0usize;

        for batch in shard.batches(a.cfg.batch_size).take(a.iters_per_epoch) {
            let batch = if a.cfg.augment && batch.x.ndim() == 4 {
                augment::standard_augment(&batch, &mut rng)
            } else {
                batch
            };

            // ---- FP/BP on the current (local or global) weights ----
            let t_fp = a.profiler.as_ref().map(|p| p.now());
            let logits = a.model.forward(&batch.x, Mode::Train);
            if let (Some(p), Some(t)) = (&a.profiler, t_fp) {
                p.record(a.id, OpKind::Forward, round, t);
            }
            let (loss, dlogits) = loss_fn.loss_and_grad(&logits, &batch.y);
            loss_sum += loss as f64;
            acc_sum += loss_fn.accuracy(&logits, &batch.y) as f64;
            batches += 1;
            let t_bp = a.profiler.as_ref().map(|p| p.now());
            a.model.backward(&dlogits);
            a.model.export_grads_into(&mut grads);
            if let (Some(p), Some(t)) = (&a.profiler, t_bp) {
                p.record(a.id, OpKind::Backward, round, t);
            }

            // DC-ASGD-style delay compensation (extension, λ > 0 only):
            // the gradient was computed at W^loc but will be applied to a
            // one-step-newer global weight; correct it with the diagonal
            // Hessian approximation g̃ = g + λ·g⊙g⊙(W_base − W_loc).
            // Without DC the raw gradients are pushed as-is (no copy).
            let use_dc = st.dc_lambda > 0.0 && st.delayed && round >= st.warmup;
            if use_dc {
                a.model.export_params_into(&mut w_loc);
                dc_grads.resize_with(grads.len(), Vec::new);
                for (d, (g, (b, wl))) in dc_grads
                    .iter_mut()
                    .zip(grads.iter().zip(base.iter().zip(&w_loc)))
                {
                    d.clear();
                    d.extend(
                        g.iter()
                            .zip(b.iter().zip(wl))
                            .map(|(&gi, (&bi, &wi))| gi + st.dc_lambda * gi * gi * (bi - wi)),
                    );
                }
            }
            let push_grads: &[Vec<f32>] = if use_dc { &dc_grads } else { &grads };

            // ---- AR-SGD: ring all-reduce, update applied locally ----
            if let Some(ring) = &a.ring {
                let t_w = a.profiler.as_ref().map(|p| p.now());
                mean.resize_with(grads.len(), Vec::new);
                for (m, g) in mean.iter_mut().zip(&grads) {
                    m.clear();
                    m.extend_from_slice(g);
                    ring.allreduce_mean(m);
                }
                if let (Some(p), Some(t)) = (&a.profiler, t_w) {
                    p.record(a.id, OpKind::PullWait, round, t);
                }
                // Eq. 1 applied locally: every worker holds the globals —
                // the model *is* the global state, no separate `base`.
                let lr = current_lr(&a.cfg, round, a.iters_per_epoch);
                a.model.axpy_params(-lr, &mean);
                round += 1;
                continue;
            }

            // ---- Local SGD: H local steps, then one averaged sync ----
            if let Some(h) = st.sync_period {
                // Local step on the worker's own model.
                a.model.axpy_params(-st.local_lr, &grads);
                let acc = local_acc
                    .get_or_insert_with(|| grads.iter().map(|g| vec![0.0f32; g.len()]).collect());
                for (av, g) in acc.iter_mut().zip(&grads) {
                    for (ai, gi) in av.iter_mut().zip(g) {
                        *ai += gi;
                    }
                }
                round += 1;
                if round.is_multiple_of(h as u64) {
                    for (key, av) in acc.iter().enumerate() {
                        let mut payload = pool.take_f32();
                        payload.extend_from_slice(av);
                        a.client.push(a.id, key, Compressed::Raw(payload))?;
                    }
                    syncs += 1;
                    let t_w = a.profiler.as_ref().map(|p| p.now());
                    base = a.client.pull_all(num_keys, syncs)?;
                    if let (Some(p), Some(t)) = (&a.profiler, t_w) {
                        p.record(a.id, OpKind::PullWait, round, t);
                    }
                    a.model.import_params_from(&base);
                    for av in acc.iter_mut() {
                        av.fill(0.0);
                    }
                }
                continue;
            }

            // ---- push (compressed in CD-SGD compression iterations) ----
            // Payload storage is drawn from the shared pool either way, so
            // steady-state rounds allocate nothing on the push path.
            let compress = st.compresses(&a.cfg.algo, round);
            let t_q = a.profiler.as_ref().map(|p| p.now());
            payloads.clear();
            payloads.extend(push_grads.iter().enumerate().map(|(key, g)| {
                if compress {
                    st.compressor
                        .as_mut()
                        .expect("compressing algorithm has a quantizer")
                        .compress_into(key, g, &pool)
                } else {
                    let mut raw = pool.take_f32();
                    raw.extend_from_slice(g);
                    Compressed::Raw(raw)
                }
            }));
            if let (Some(p), Some(t)) = (&a.profiler, t_q) {
                if compress {
                    p.record(a.id, OpKind::Compress, round, t);
                }
            }
            for (key, payload) in payloads.drain(..).enumerate() {
                a.client.push(a.id, key, payload)?;
            }

            let formal = st.delayed && round >= st.warmup;
            if formal {
                // Deferred pull: the local update for the next iteration
                // needs W_round (the result of the previous round), which
                // the warm-up's final pull or the previous formal
                // iteration left outstanding.
                if round > st.warmup {
                    let t_w = a.profiler.as_ref().map(|p| p.now());
                    let receivers = pending_pulls.take().expect("async pull fired last round");
                    base = receivers
                        .into_iter()
                        .map(|r| r.wait())
                        .collect::<Result<_, _>>()?;
                    if let (Some(p), Some(t)) = (&a.profiler, t_w) {
                        p.record(a.id, OpKind::PullWait, round, t);
                    }
                }
                // Request next round's base (version round+1) now; the
                // transfer overlaps the next iteration's computation.
                pending_pulls = Some(
                    (0..num_keys)
                        .map(|k| a.client.pull_async(k, round + 1))
                        .collect::<Result<_, _>>()?,
                );
                // W^loc_{r+1} = W_r − lr_loc · grad_r (eq. 11).
                let t_u = a.profiler.as_ref().map(|p| p.now());
                a.model.import_params_from(&base);
                a.model.axpy_params(-st.local_lr, &grads);
                if let (Some(p), Some(t)) = (&a.profiler, t_u) {
                    p.record(a.id, OpKind::LocalUpdate, round, t);
                }
            } else {
                // Blocking (S-SGD / BIT-SGD / warm-up): wait for this
                // round's aggregate and adopt the new global weights.
                let t_w = a.profiler.as_ref().map(|p| p.now());
                base = a.client.pull_all(num_keys, round + 1)?;
                if let (Some(p), Some(t)) = (&a.profiler, t_w) {
                    p.record(a.id, OpKind::PullWait, round, t);
                }
                a.model.import_params_from(&base);
            }
            round += 1;
        }

        // ---- epoch end: evaluate global weights (worker 0 only) ----
        let ring_mode = a.ring.is_some();
        let test_acc = match a.test.as_ref() {
            Some(test) if ring_mode => {
                // AR-SGD: the model holds the globals; evaluate directly.
                Some(evaluate(&mut a.model, test))
            }
            Some(test) => {
                a.model.export_params_into(&mut saved);
                a.model.import_params_from(&base);
                let acc = evaluate(&mut a.model, test);
                a.model.import_params(&saved);
                Some(acc)
            }
            None => None,
        };

        let final_weights =
            (a.id == 0 && epoch + 1 == a.cfg.epochs && ring_mode).then(|| a.model.export_params());
        let report = EpochReport {
            worker: a.id,
            epoch,
            loss_sum,
            acc_sum,
            batches,
            test_acc,
            final_weights,
        };
        // A dropped receiver means the trainer is gone (aborting or
        // dropped by its caller): exit cleanly, it is not this worker's
        // failure.
        if a.report.send(report).is_err() {
            return Ok(());
        }
        a.barrier.wait()?;
    }

    // Drain the final round's outstanding pull (delayed algorithms fire
    // one at the end of every iteration). The reply only arrives once
    // every worker's last push is applied, so returning from here
    // guarantees the server group holds the fully-aggregated final
    // weights — a standalone worker process can exit and let an external
    // controller snapshot without racing the last round.
    if let Some(receivers) = pending_pulls.take() {
        for r in receivers {
            r.wait()?;
        }
    }
    Ok(())
}

/// The learning rate in effect at `round`, honoring the epoch-indexed
/// decay schedule (AR-SGD applies the schedule worker-side; the PS
/// algorithms apply it on the server).
fn current_lr(cfg: &TrainConfig, round: u64, iters_per_epoch: usize) -> f32 {
    let epoch = (round / iters_per_epoch.max(1) as u64) as usize;
    let mut lr = cfg.global_lr;
    for &(at, new_lr) in &cfg.lr_schedule {
        if epoch >= at {
            lr = new_lr;
        }
    }
    lr
}

/// Accuracy of `model` (eval mode) over a dataset, batched.
pub(crate) fn evaluate(model: &mut Sequential, data: &Dataset) -> f32 {
    let loss_fn = SoftmaxCrossEntropy;
    let mut correct_weighted = 0.0f64;
    let mut total = 0usize;
    for Batch { x, y } in data.batches(64) {
        let logits = model.forward(&x, Mode::Eval);
        correct_weighted += loss_fn.accuracy(&logits, &y) as f64 * y.len() as f64;
        total += y.len();
    }
    if total == 0 {
        0.0
    } else {
        (correct_weighted / total as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algo_state_resolution() {
        let s = AlgoState::new(&Algorithm::SSgd);
        assert!(!s.delayed && s.compressor.is_none());
        let s = AlgoState::new(&Algorithm::OdSgd { local_lr: 0.2 });
        assert!(s.delayed && s.compressor.is_none() && s.local_lr == 0.2);
        let s = AlgoState::new(&Algorithm::BitSgd { threshold: 0.5 });
        assert!(!s.delayed && s.compressor.is_some());
        let s = AlgoState::new(&Algorithm::cd_sgd(0.1, 0.5, 4, 3));
        assert!(s.delayed && s.warmup == 3);
    }

    #[test]
    fn cd_compression_schedule_matches_algorithm1() {
        // Warm-up rounds push raw; then count % k == 0 is the correction.
        let algo = Algorithm::cd_sgd(0.1, 0.5, 3, 2);
        let st = AlgoState::new(&algo);
        let schedule: Vec<bool> = (0..10).map(|r| st.compresses(&algo, r)).collect();
        // rounds:    0      1      2(c0)  3(c1) 4(c2) 5(c3=0) 6 7 8(c6=0) 9
        assert_eq!(
            schedule,
            vec![false, false, false, true, true, false, true, true, false, true]
        );
    }

    #[test]
    fn bit_always_compresses_ssgd_never() {
        let bit = Algorithm::BitSgd { threshold: 0.5 };
        let st = AlgoState::new(&bit);
        assert!((0..5).all(|r| st.compresses(&bit, r)));
        let ssgd = Algorithm::SSgd;
        let st = AlgoState::new(&ssgd);
        assert!((0..5).all(|r| !st.compresses(&ssgd, r)));
    }
}
