//! Worker-side durable snapshots: the trainer half of the recovery
//! subsystem (DESIGN.md §14).
//!
//! The parameter server persists the *shared* state (shard weights and
//! optimizer buffers — see `cdsgd_ps::recover`); what it cannot see is
//! each worker's *private* algorithm state: error-feedback residuals,
//! delay-compensation buffers, the local model replica. A
//! [`WorkerCheckpoint`] captures that private state at an epoch boundary
//! so a restarted worker resumes bit-identically instead of silently
//! dropping in-flight gradient mass.
//!
//! The format mirrors the server's shard checkpoints: versioned binary
//! layout, trailing FNV-1a checksum, atomic temp-file + fsync + rename
//! writes. Worker and server checkpoints use distinct magic tags
//! (`CDWK` vs `CDCK`) and file extensions so a misdirected
//! `--checkpoint-dir` fails loudly instead of misreading bytes.

use cdsgd_net::wire::{put_f32, put_u32, put_u64, Cursor};
use cdsgd_ps::recover::{fnv1a64, CheckpointError};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic prefix of every worker checkpoint file.
const MAGIC: &[u8; 4] = b"CDWK";

/// Format version tag; [`WorkerCheckpoint::decode`] rejects unknown
/// versions instead of misreading them.
const FORMAT_VERSION: u32 = 1;

/// One worker's private training state, captured at an epoch boundary
/// (all pushes of the epoch settled, no pulls in flight).
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerCheckpoint {
    /// Which worker this snapshot belongs to.
    pub worker: usize,
    /// Cohort size that wrote this snapshot (resume must match it: data
    /// sharding and round arithmetic both depend on it).
    pub num_workers: usize,
    /// Epochs fully completed when the snapshot was taken; resume starts
    /// at this epoch index.
    pub epoch: usize,
    /// Aggregate rounds completed (`epoch * iters_per_epoch`), recorded
    /// for cross-checking against the server's checkpoint round.
    pub round: u64,
    /// The local model replica's parameters, one vector per key.
    pub model: Vec<Vec<f32>>,
    /// Opaque strategy state from `UpdateStrategy::export_state` —
    /// error-feedback velocities, compressor residuals, Local SGD
    /// accumulators. The slot layout is private to the strategy (e.g.
    /// EF-SGD stores two vectors per key); empty vectors mean "no state
    /// for this slot".
    pub strategy: Vec<Vec<f32>>,
}

/// Canonical file name of a worker checkpoint.
pub fn worker_file_name(worker: usize, epoch: usize) -> String {
    format!("worker{worker:04}-epoch{epoch:012}.wkpt")
}

/// Inverse of [`worker_file_name`]: `Some((worker, epoch))` if `name` is
/// a worker checkpoint file name.
fn parse_file_name(name: &str) -> Option<(usize, usize)> {
    let rest = name.strip_prefix("worker")?.strip_suffix(".wkpt")?;
    let (worker, epoch) = rest.split_once("-epoch")?;
    Some((worker.parse().ok()?, epoch.parse().ok()?))
}

impl WorkerCheckpoint {
    /// Serialize to the versioned binary layout: magic, format version,
    /// worker, num_workers, epoch, round, then the model vectors and the
    /// strategy vectors as two length-prefixed lists, and a trailing
    /// FNV-1a checksum.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        put_u32(&mut buf, FORMAT_VERSION);
        put_u32(&mut buf, self.worker as u32);
        put_u32(&mut buf, self.num_workers as u32);
        put_u64(&mut buf, self.epoch as u64);
        put_u64(&mut buf, self.round);
        for list in [&self.model, &self.strategy] {
            put_u32(&mut buf, list.len() as u32);
            for v in list {
                put_u32(&mut buf, v.len() as u32);
                for &x in v {
                    put_f32(&mut buf, x);
                }
            }
        }
        let sum = fnv1a64(&buf);
        put_u64(&mut buf, sum);
        buf
    }

    /// Decode and validate a worker checkpoint file body.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < MAGIC.len() + 8 {
            return Err(CheckpointError::Corrupt(format!(
                "{} bytes is too short for a worker checkpoint",
                bytes.len()
            )));
        }
        let (body, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().unwrap());
        let actual = fnv1a64(body);
        if stored != actual {
            return Err(CheckpointError::Corrupt(format!(
                "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
            )));
        }
        let corrupt = |e: cdsgd_net::NetError| CheckpointError::Corrupt(e.to_string());
        let mut cur = Cursor::new(body);
        if cur.take(4).map_err(corrupt)? != MAGIC {
            return Err(CheckpointError::Corrupt(
                "bad magic (not a worker checkpoint)".into(),
            ));
        }
        let format = cur.u32().map_err(corrupt)?;
        if format != FORMAT_VERSION {
            return Err(CheckpointError::Corrupt(format!(
                "unknown format version {format} (this build reads {FORMAT_VERSION})"
            )));
        }
        let worker = cur.u32().map_err(corrupt)? as usize;
        let num_workers = cur.u32().map_err(corrupt)? as usize;
        let epoch = cur.u64().map_err(corrupt)? as usize;
        let round = cur.u64().map_err(corrupt)?;
        let mut lists = [Vec::new(), Vec::new()];
        for list in &mut lists {
            let n = cur.u32().map_err(corrupt)? as usize;
            list.reserve(n);
            for _ in 0..n {
                let len = cur.u32().map_err(corrupt)? as usize;
                list.push(cur.f32s(len).map_err(corrupt)?);
            }
        }
        let [model, strategy] = lists;
        if cur.remaining() != 0 {
            return Err(CheckpointError::Corrupt(format!(
                "{} trailing bytes after worker checkpoint body",
                cur.remaining()
            )));
        }
        Ok(Self {
            worker,
            num_workers,
            epoch,
            round,
            model,
            strategy,
        })
    }

    /// Write this checkpoint into `dir` atomically (temp sibling, then
    /// fsync, then rename), so a crash mid-write leaves the previous
    /// epoch's file intact, never a torn one. Returns the final path.
    pub fn save_atomic(&self, dir: &Path) -> Result<PathBuf, CheckpointError> {
        std::fs::create_dir_all(dir)?;
        let name = worker_file_name(self.worker, self.epoch);
        let final_path = dir.join(&name);
        let tmp_path = dir.join(format!(".{}.tmp-{}", name, std::process::id()));
        let bytes = self.encode();
        let mut f = std::fs::File::create(&tmp_path)?;
        f.write_all(&bytes)?;
        f.sync_all()?;
        drop(f);
        if let Err(e) = std::fs::rename(&tmp_path, &final_path) {
            std::fs::remove_file(&tmp_path).ok();
            return Err(e.into());
        }
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(final_path)
    }
}

/// Load and validate the checkpoint for `worker` at `epoch` from `dir`:
/// the decoded header must agree with the file name and the caller's
/// cohort size, otherwise the snapshot belongs to a different run shape
/// and is rejected.
pub fn load_worker(
    dir: &Path,
    worker: usize,
    num_workers: usize,
    epoch: usize,
) -> Result<WorkerCheckpoint, CheckpointError> {
    let path = dir.join(worker_file_name(worker, epoch));
    let bytes = std::fs::read(&path)?;
    let ckpt = WorkerCheckpoint::decode(&bytes)?;
    if ckpt.worker != worker || ckpt.epoch != epoch {
        return Err(CheckpointError::Corrupt(format!(
            "{} claims worker {} epoch {} in its header",
            path.display(),
            ckpt.worker,
            ckpt.epoch
        )));
    }
    if ckpt.num_workers != num_workers {
        return Err(CheckpointError::Corrupt(format!(
            "{} was written by a {}-worker run, expected {}",
            path.display(),
            ckpt.num_workers,
            num_workers
        )));
    }
    Ok(ckpt)
}

/// The latest epoch for which `worker` has a checkpoint file in `dir`,
/// or `Ok(None)` when the directory does not exist or holds none.
pub fn latest_epoch_for(dir: &Path, worker: usize) -> Result<Option<usize>, CheckpointError> {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let mut latest = None;
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some((w, epoch)) = parse_file_name(name) else {
            continue;
        };
        if w == worker && latest.is_none_or(|e| epoch > e) {
            latest = Some(epoch);
        }
    }
    Ok(latest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("cdsgd-wkpt-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample(worker: usize, epoch: usize) -> WorkerCheckpoint {
        WorkerCheckpoint {
            worker,
            num_workers: 4,
            epoch,
            round: (epoch as u64) * 6,
            model: vec![vec![1.0, -2.5], vec![3.25]],
            // Deliberately a different slot count than `model`: the
            // strategy layout is opaque to the codec.
            strategy: vec![vec![0.125], vec![], vec![-7.0]],
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let c = sample(2, 5);
        assert_eq!(WorkerCheckpoint::decode(&c.encode()).unwrap(), c);
    }

    #[test]
    fn corruption_and_wrong_magic_are_rejected() {
        let mut bytes = sample(0, 1).encode();
        bytes[18] ^= 1;
        assert!(matches!(
            WorkerCheckpoint::decode(&bytes),
            Err(CheckpointError::Corrupt(_))
        ));
        // A *server* shard checkpoint must not decode as a worker one,
        // even though both carry valid checksums.
        let shard = cdsgd_ps::ShardCheckpoint {
            shard: 0,
            num_shards: 1,
            round: 6,
            weights: vec![vec![1.0]],
            opt_state: vec![vec![]],
        };
        assert!(matches!(
            WorkerCheckpoint::decode(&shard.encode()),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn save_load_and_latest_epoch() {
        let dir = tmp_dir("save-load");
        sample(1, 2).save_atomic(&dir).unwrap();
        sample(1, 4).save_atomic(&dir).unwrap();
        sample(0, 9).save_atomic(&dir).unwrap();
        assert_eq!(load_worker(&dir, 1, 4, 4).unwrap(), sample(1, 4));
        assert_eq!(latest_epoch_for(&dir, 1).unwrap(), Some(4));
        assert_eq!(latest_epoch_for(&dir, 0).unwrap(), Some(9));
        assert_eq!(latest_epoch_for(&dir, 3).unwrap(), None);
        // No stray temp files survive the renames.
        assert!(std::fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .starts_with('.')));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cohort_size_skew_is_rejected() {
        let dir = tmp_dir("skew");
        sample(1, 2).save_atomic(&dir).unwrap();
        assert!(matches!(
            load_worker(&dir, 1, 8, 2),
            Err(CheckpointError::Corrupt(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_directory_means_no_checkpoint_not_an_error() {
        let dir = tmp_dir("absent");
        assert_eq!(latest_epoch_for(&dir, 0).unwrap(), None);
    }
}
