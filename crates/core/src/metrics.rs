//! Per-epoch training metrics and run histories — the data behind every
//! learning-curve figure.

use crate::profile::OpEvent;
use serde::Serialize;

/// Metrics of one epoch, aggregated across workers.
#[derive(Clone, Debug, Serialize)]
pub struct EpochMetrics {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over all batches of all workers.
    pub train_loss: f32,
    /// Mean training accuracy over all batches of all workers.
    pub train_acc: f32,
    /// Test accuracy of the global model (worker 0 evaluates), if a test
    /// set was provided.
    pub test_acc: Option<f32>,
    /// Wall-clock seconds this epoch took (all workers, real threads).
    pub epoch_time_s: f64,
    /// Cumulative bytes pushed worker→server since training started.
    pub cumulative_push_bytes: u64,
    /// Cumulative pull-reply bytes server→worker since training started
    /// (the downlink the paper's eq. 4–9 accounting pairs with the
    /// uplink above).
    pub cumulative_pull_bytes: u64,
    /// Bytes pushed during this epoch alone (delta of
    /// [`EpochMetrics::cumulative_push_bytes`]).
    pub epoch_push_bytes: u64,
    /// Bytes pulled during this epoch alone (delta of
    /// [`EpochMetrics::cumulative_pull_bytes`]).
    pub epoch_pull_bytes: u64,
}

/// Where and why a run stopped early (worker lost, server round failed).
#[derive(Clone, Debug, Serialize)]
pub struct AbortRecord {
    /// Epoch being trained when the run aborted (its metrics are *not*
    /// in [`TrainingHistory::epochs`] — only completed epochs are).
    pub epoch: usize,
    /// First aggregate round that could no longer complete.
    pub round: u64,
    /// Display form of the [`cdsgd_ps::NetError`] that ended the run.
    pub error: String,
}

/// The full record of one training run.
#[derive(Clone, Debug, Serialize)]
pub struct TrainingHistory {
    /// Algorithm display name.
    pub algo: String,
    /// Number of workers.
    pub num_workers: usize,
    /// Per-epoch records in order.
    pub epochs: Vec<EpochMetrics>,
    /// The final global weights, one vector per parameter key (snapshot
    /// of the server after the last round).
    pub final_weights: Vec<Vec<f32>>,
    /// Per-op wall-clock intervals, if profiling was enabled.
    pub profile: Option<Vec<OpEvent>>,
    /// `Some` if the run aborted early (a worker died, the server failed
    /// a round); the epochs recorded above are the ones that completed.
    pub aborted: Option<AbortRecord>,
}

impl TrainingHistory {
    /// Test accuracy after the final epoch.
    pub fn final_test_acc(&self) -> Option<f32> {
        self.epochs.last().and_then(|e| e.test_acc)
    }

    /// Best test accuracy over the run (the paper reports "convergence
    /// accuracy" as the best achieved top-1).
    pub fn best_test_acc(&self) -> Option<f32> {
        self.epochs
            .iter()
            .filter_map(|e| e.test_acc)
            .fold(None, |best, a| Some(best.map_or(a, |b: f32| b.max(a))))
    }

    /// Training loss after the final epoch.
    pub fn final_train_loss(&self) -> Option<f32> {
        self.epochs.last().map(|e| e.train_loss)
    }

    /// Mean wall-clock epoch time, excluding the first (warm-up/JIT)
    /// epoch when there are at least two.
    pub fn avg_epoch_time(&self) -> f64 {
        let skip = usize::from(self.epochs.len() > 1);
        let rest = &self.epochs[skip..];
        if rest.is_empty() {
            0.0
        } else {
            rest.iter().map(|e| e.epoch_time_s).sum::<f64>() / rest.len() as f64
        }
    }

    /// Render as tab-separated rows (header + one row per epoch), the
    /// format the figure harnesses print.
    pub fn to_tsv(&self) -> String {
        let mut out = String::from(
            "epoch\ttrain_loss\ttrain_acc\ttest_acc\tepoch_s\tpush_bytes\tpull_bytes\n",
        );
        for e in &self.epochs {
            out.push_str(&format!(
                "{}\t{:.4}\t{:.4}\t{}\t{:.3}\t{}\t{}\n",
                e.epoch,
                e.train_loss,
                e.train_acc,
                e.test_acc.map_or("-".to_string(), |a| format!("{a:.4}")),
                e.epoch_time_s,
                e.cumulative_push_bytes,
                e.cumulative_pull_bytes,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn history() -> TrainingHistory {
        TrainingHistory {
            algo: "S-SGD".into(),
            num_workers: 2,
            final_weights: vec![vec![0.0; 3]],
            profile: None,
            aborted: None,
            epochs: vec![
                EpochMetrics {
                    epoch: 0,
                    train_loss: 2.0,
                    train_acc: 0.3,
                    test_acc: Some(0.4),
                    epoch_time_s: 5.0,
                    cumulative_push_bytes: 100,
                    cumulative_pull_bytes: 400,
                    epoch_push_bytes: 100,
                    epoch_pull_bytes: 400,
                },
                EpochMetrics {
                    epoch: 1,
                    train_loss: 1.0,
                    train_acc: 0.7,
                    test_acc: Some(0.8),
                    epoch_time_s: 3.0,
                    cumulative_push_bytes: 200,
                    cumulative_pull_bytes: 800,
                    epoch_push_bytes: 100,
                    epoch_pull_bytes: 400,
                },
                EpochMetrics {
                    epoch: 2,
                    train_loss: 0.9,
                    train_acc: 0.75,
                    test_acc: Some(0.75),
                    epoch_time_s: 3.2,
                    cumulative_push_bytes: 300,
                    cumulative_pull_bytes: 1200,
                    epoch_push_bytes: 100,
                    epoch_pull_bytes: 400,
                },
            ],
        }
    }

    #[test]
    fn accessors() {
        let h = history();
        assert_eq!(h.final_test_acc(), Some(0.75));
        assert_eq!(h.best_test_acc(), Some(0.8));
        assert_eq!(h.final_train_loss(), Some(0.9));
        // First epoch excluded from the average.
        assert!((h.avg_epoch_time() - 3.1).abs() < 1e-9);
    }

    #[test]
    fn tsv_has_header_and_rows() {
        let tsv = history().to_tsv();
        let lines: Vec<&str> = tsv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("epoch\t"));
        assert!(lines[0].ends_with("push_bytes\tpull_bytes"));
        assert!(lines[1].contains("2.0000"));
        assert!(lines[1].ends_with("100\t400"));
    }

    #[test]
    fn empty_history_is_safe() {
        let h = TrainingHistory {
            algo: "x".into(),
            num_workers: 1,
            epochs: vec![],
            final_weights: vec![],
            profile: None,
            aborted: None,
        };
        assert_eq!(h.final_test_acc(), None);
        assert_eq!(h.best_test_acc(), None);
        assert_eq!(h.avg_epoch_time(), 0.0);
    }
}
