//! Failure-aware synchronization primitives for the trainer.

use cdsgd_ps::NetError;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Restart budget for hot worker replacement (DESIGN.md §14): when a
/// worker is lost mid-run, the supervisor consults this policy before
/// admitting a replacement instead of aborting with
/// [`NetError::WorkerLost`].
///
/// The policy is a simple token bucket with exponential backoff:
/// `max_restarts` replacements total (across all workers), and the i-th
/// grant asks the caller to wait `backoff * 2^(i-1)` before respawning so
/// a crash-looping worker cannot spin the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestartPolicy {
    /// Total replacement grants before the run aborts. 0 restores the
    /// pre-recovery behavior: every loss is fatal.
    pub max_restarts: u32,
    /// Base delay before the first respawn; doubles per grant.
    pub backoff: Duration,
}

impl Default for RestartPolicy {
    /// No restarts — worker loss aborts the run, exactly as before the
    /// recovery subsystem existed. Recovery is strictly opt-in.
    fn default() -> Self {
        Self {
            max_restarts: 0,
            backoff: Duration::from_millis(0),
        }
    }
}

impl RestartPolicy {
    /// A policy granting `max_restarts` replacements with `backoff` base
    /// delay.
    pub fn new(max_restarts: u32, backoff: Duration) -> Self {
        Self {
            max_restarts,
            backoff,
        }
    }

    /// Fresh mutable budget tracking grants against this policy.
    pub fn budget(&self) -> RestartBudget {
        RestartBudget {
            policy: *self,
            used: 0,
        }
    }
}

/// Mutable restart state: how many grants a run has consumed.
#[derive(Debug, Clone)]
pub struct RestartBudget {
    policy: RestartPolicy,
    used: u32,
}

impl RestartBudget {
    /// Ask to replace a lost worker. `Some(delay)` grants the restart —
    /// the caller should sleep `delay` before respawning; `None` means the
    /// budget is exhausted and the loss is fatal.
    pub fn grant(&mut self) -> Option<Duration> {
        if self.used >= self.policy.max_restarts {
            return None;
        }
        // 1st grant waits `backoff`, 2nd `2*backoff`, 3rd `4*backoff`, ...
        let delay = self
            .policy
            .backoff
            .saturating_mul(1u32 << self.used.min(20));
        self.used += 1;
        Some(delay)
    }

    /// Grants consumed so far.
    pub fn used(&self) -> u32 {
        self.used
    }

    /// Grants remaining before worker loss becomes fatal.
    pub fn remaining(&self) -> u32 {
        self.policy.max_restarts - self.used
    }
}

/// A reusable N-party barrier that can be *poisoned*: once any party
/// calls [`PoisonBarrier::poison`], every waiter — current and future —
/// returns `Err` with the poisoning error instead of blocking for
/// parties that will never arrive.
///
/// This is the cancellation token threaded through `WorkerArgs`: the
/// epoch rendezvous that used to be a naked [`std::sync::Barrier`] (and
/// deadlocked the survivors when one worker died) becomes a fallible
/// wait the supervisor can break with a typed [`NetError::WorkerLost`].
pub struct PoisonBarrier {
    state: Mutex<State>,
    cv: Condvar,
}

struct State {
    /// Parties the current generation waits for. Shrinks when a party
    /// [`PoisonBarrier::leave`]s (elastic membership).
    parties: usize,
    /// Parties currently waiting in this generation.
    count: usize,
    /// Completed generations; waiters key their wakeup on it changing.
    generation: u64,
    poison: Option<NetError>,
}

impl PoisonBarrier {
    /// A barrier for `n` parties (like [`std::sync::Barrier::new`]).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one party");
        Self {
            state: Mutex::new(State {
                parties: n,
                count: 0,
                generation: 0,
                poison: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Rendezvous with the other parties. `Ok(())` once all current
    /// parties arrive; `Err` immediately (without waiting) if the barrier
    /// is or becomes poisoned.
    pub fn wait(&self) -> Result<(), NetError> {
        let mut s = self.state.lock().expect("barrier lock poisoned");
        if let Some(e) = &s.poison {
            return Err(e.clone());
        }
        s.count += 1;
        if s.count == s.parties {
            s.count = 0;
            s.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        while s.generation == gen && s.poison.is_none() {
            s = self.cv.wait(s).expect("barrier lock poisoned");
        }
        match &s.poison {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Permanently withdraw one party (elastic membership: a worker that
    /// departed mid-run will never rendezvous again). If everyone else is
    /// already waiting, the generation completes immediately. Leaving a
    /// 1-party barrier is a no-op — the sole party (a standalone worker
    /// process) has nobody to release.
    pub fn leave(&self) {
        let mut s = self.state.lock().expect("barrier lock poisoned");
        if s.parties == 1 {
            return;
        }
        s.parties -= 1;
        if s.count >= s.parties {
            s.count = 0;
            s.generation += 1;
            self.cv.notify_all();
        }
    }

    /// Break the barrier: wake every waiter with `err` and make all
    /// future waits fail with it. The first poison wins; later calls are
    /// no-ops.
    pub fn poison(&self, err: NetError) {
        let mut s = self.state.lock().expect("barrier lock poisoned");
        if s.poison.is_none() {
            s.poison = Some(err);
        }
        self.cv.notify_all();
    }

    /// The poisoning error, if any.
    pub fn poisoned(&self) -> Option<NetError> {
        self.state
            .lock()
            .expect("barrier lock poisoned")
            .poison
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn default_restart_policy_refuses_all_restarts() {
        let mut budget = RestartPolicy::default().budget();
        assert_eq!(budget.grant(), None);
        assert_eq!(budget.used(), 0);
        assert_eq!(budget.remaining(), 0);
    }

    #[test]
    fn restart_budget_backs_off_exponentially_then_exhausts() {
        let policy = RestartPolicy::new(3, Duration::from_millis(10));
        let mut budget = policy.budget();
        assert_eq!(budget.grant(), Some(Duration::from_millis(10)));
        assert_eq!(budget.grant(), Some(Duration::from_millis(20)));
        assert_eq!(budget.grant(), Some(Duration::from_millis(40)));
        assert_eq!(budget.grant(), None, "budget of 3 exhausted");
        assert_eq!(budget.used(), 3);
        assert_eq!(budget.remaining(), 0);
    }

    #[test]
    fn zero_backoff_grants_immediately() {
        let mut budget = RestartPolicy::new(2, Duration::ZERO).budget();
        assert_eq!(budget.grant(), Some(Duration::ZERO));
        assert_eq!(budget.grant(), Some(Duration::ZERO));
        assert_eq!(budget.grant(), None);
    }

    #[test]
    fn single_party_barrier_is_a_no_op() {
        let b = PoisonBarrier::new(1);
        for _ in 0..3 {
            b.wait().unwrap();
        }
    }

    #[test]
    fn full_party_rendezvous_completes() {
        let b = Arc::new(PoisonBarrier::new(3));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.wait())
            })
            .collect();
        b.wait().unwrap();
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let b = Arc::new(PoisonBarrier::new(2));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || {
            for _ in 0..5 {
                b2.wait()?;
            }
            Ok::<(), NetError>(())
        });
        for _ in 0..5 {
            b.wait().unwrap();
        }
        h.join().unwrap().unwrap();
    }

    #[test]
    fn leave_releases_parked_waiters() {
        let b = Arc::new(PoisonBarrier::new(3));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.wait())
            })
            .collect();
        // Let both park, then withdraw the third party instead of
        // arriving: the generation completes with two.
        std::thread::sleep(Duration::from_millis(20));
        b.leave();
        for h in waiters {
            h.join().unwrap().unwrap();
        }
        // Subsequent generations need only the remaining two parties.
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.wait());
        b.wait().unwrap();
        h.join().unwrap().unwrap();
    }

    #[test]
    fn poison_wakes_current_waiters_and_fails_future_ones() {
        let err = NetError::WorkerLost { id: 1, round: 7 };
        let b = Arc::new(PoisonBarrier::new(3));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.wait())
            })
            .collect();
        // Let both park, then break the barrier instead of arriving.
        std::thread::sleep(Duration::from_millis(20));
        b.poison(err.clone());
        for h in waiters {
            assert_eq!(h.join().unwrap(), Err(err.clone()));
        }
        assert_eq!(b.wait(), Err(err.clone()));
        assert_eq!(b.poisoned(), Some(err.clone()));
        // First poison wins.
        b.poison(NetError::ServerGone);
        assert_eq!(b.poisoned(), Some(err));
    }
}
