//! Failure-aware synchronization primitives for the trainer.

use cdsgd_ps::NetError;
use std::sync::{Condvar, Mutex};

/// A reusable N-party barrier that can be *poisoned*: once any party
/// calls [`PoisonBarrier::poison`], every waiter — current and future —
/// returns `Err` with the poisoning error instead of blocking for
/// parties that will never arrive.
///
/// This is the cancellation token threaded through `WorkerArgs`: the
/// epoch rendezvous that used to be a naked [`std::sync::Barrier`] (and
/// deadlocked the survivors when one worker died) becomes a fallible
/// wait the supervisor can break with a typed [`NetError::WorkerLost`].
pub struct PoisonBarrier {
    state: Mutex<State>,
    cv: Condvar,
}

struct State {
    /// Parties the current generation waits for. Shrinks when a party
    /// [`PoisonBarrier::leave`]s (elastic membership).
    parties: usize,
    /// Parties currently waiting in this generation.
    count: usize,
    /// Completed generations; waiters key their wakeup on it changing.
    generation: u64,
    poison: Option<NetError>,
}

impl PoisonBarrier {
    /// A barrier for `n` parties (like [`std::sync::Barrier::new`]).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one party");
        Self {
            state: Mutex::new(State {
                parties: n,
                count: 0,
                generation: 0,
                poison: None,
            }),
            cv: Condvar::new(),
        }
    }

    /// Rendezvous with the other parties. `Ok(())` once all current
    /// parties arrive; `Err` immediately (without waiting) if the barrier
    /// is or becomes poisoned.
    pub fn wait(&self) -> Result<(), NetError> {
        let mut s = self.state.lock().expect("barrier lock poisoned");
        if let Some(e) = &s.poison {
            return Err(e.clone());
        }
        s.count += 1;
        if s.count == s.parties {
            s.count = 0;
            s.generation += 1;
            self.cv.notify_all();
            return Ok(());
        }
        let gen = s.generation;
        while s.generation == gen && s.poison.is_none() {
            s = self.cv.wait(s).expect("barrier lock poisoned");
        }
        match &s.poison {
            Some(e) => Err(e.clone()),
            None => Ok(()),
        }
    }

    /// Permanently withdraw one party (elastic membership: a worker that
    /// departed mid-run will never rendezvous again). If everyone else is
    /// already waiting, the generation completes immediately. Leaving a
    /// 1-party barrier is a no-op — the sole party (a standalone worker
    /// process) has nobody to release.
    pub fn leave(&self) {
        let mut s = self.state.lock().expect("barrier lock poisoned");
        if s.parties == 1 {
            return;
        }
        s.parties -= 1;
        if s.count >= s.parties {
            s.count = 0;
            s.generation += 1;
            self.cv.notify_all();
        }
    }

    /// Break the barrier: wake every waiter with `err` and make all
    /// future waits fail with it. The first poison wins; later calls are
    /// no-ops.
    pub fn poison(&self, err: NetError) {
        let mut s = self.state.lock().expect("barrier lock poisoned");
        if s.poison.is_none() {
            s.poison = Some(err);
        }
        self.cv.notify_all();
    }

    /// The poisoning error, if any.
    pub fn poisoned(&self) -> Option<NetError> {
        self.state
            .lock()
            .expect("barrier lock poisoned")
            .poison
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn single_party_barrier_is_a_no_op() {
        let b = PoisonBarrier::new(1);
        for _ in 0..3 {
            b.wait().unwrap();
        }
    }

    #[test]
    fn full_party_rendezvous_completes() {
        let b = Arc::new(PoisonBarrier::new(3));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.wait())
            })
            .collect();
        b.wait().unwrap();
        for h in handles {
            h.join().unwrap().unwrap();
        }
    }

    #[test]
    fn barrier_is_reusable_across_generations() {
        let b = Arc::new(PoisonBarrier::new(2));
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || {
            for _ in 0..5 {
                b2.wait()?;
            }
            Ok::<(), NetError>(())
        });
        for _ in 0..5 {
            b.wait().unwrap();
        }
        h.join().unwrap().unwrap();
    }

    #[test]
    fn leave_releases_parked_waiters() {
        let b = Arc::new(PoisonBarrier::new(3));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.wait())
            })
            .collect();
        // Let both park, then withdraw the third party instead of
        // arriving: the generation completes with two.
        std::thread::sleep(Duration::from_millis(20));
        b.leave();
        for h in waiters {
            h.join().unwrap().unwrap();
        }
        // Subsequent generations need only the remaining two parties.
        let b2 = Arc::clone(&b);
        let h = std::thread::spawn(move || b2.wait());
        b.wait().unwrap();
        h.join().unwrap().unwrap();
    }

    #[test]
    fn poison_wakes_current_waiters_and_fails_future_ones() {
        let err = NetError::WorkerLost { id: 1, round: 7 };
        let b = Arc::new(PoisonBarrier::new(3));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.wait())
            })
            .collect();
        // Let both park, then break the barrier instead of arriving.
        std::thread::sleep(Duration::from_millis(20));
        b.poison(err.clone());
        for h in waiters {
            assert_eq!(h.join().unwrap(), Err(err.clone()));
        }
        assert_eq!(b.wait(), Err(err.clone()));
        assert_eq!(b.poisoned(), Some(err.clone()));
        // First poison wins.
        b.poison(NetError::ServerGone);
        assert_eq!(b.poisoned(), Some(err));
    }
}
