//! Learning-rate schedules: the step decay the paper uses for ResNet-50
//! (×0.1 at epochs 30/60/80) plus the schedules a downstream user would
//! expect (multi-step, cosine, linear warm-up).

/// An epoch-indexed learning-rate schedule.
#[derive(Clone, Debug, PartialEq)]
pub enum LrSchedule {
    /// Constant rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Multiply by `gamma` at each listed epoch (the paper's ResNet-50
    /// recipe is `base=0.4, gamma=0.1, milestones=[30, 60, 80]`).
    MultiStep {
        /// Initial rate.
        base: f32,
        /// Multiplier applied at each milestone.
        gamma: f32,
        /// Epochs at which the multiplier applies (ascending).
        milestones: Vec<usize>,
    },
    /// Cosine annealing from `base` to `min_lr` over `total_epochs`.
    Cosine {
        /// Initial rate.
        base: f32,
        /// Final rate.
        min_lr: f32,
        /// Annealing horizon.
        total_epochs: usize,
    },
    /// Linear warm-up from `start` to `base` over `warmup_epochs`, then
    /// constant (the large-batch recipe of Goyal et al., cited in §5).
    Warmup {
        /// Rate at epoch 0.
        start: f32,
        /// Rate after warm-up.
        base: f32,
        /// Warm-up length in epochs.
        warmup_epochs: usize,
    },
}

impl LrSchedule {
    /// The learning rate in effect at `epoch`.
    pub fn at(&self, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant { lr } => *lr,
            LrSchedule::MultiStep {
                base,
                gamma,
                milestones,
            } => {
                let hits = milestones.iter().filter(|&&m| epoch >= m).count() as i32;
                base * gamma.powi(hits)
            }
            LrSchedule::Cosine {
                base,
                min_lr,
                total_epochs,
            } => {
                if *total_epochs == 0 || epoch >= *total_epochs {
                    return *min_lr;
                }
                let t = epoch as f32 / *total_epochs as f32;
                min_lr + 0.5 * (base - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
            LrSchedule::Warmup {
                start,
                base,
                warmup_epochs,
            } => {
                if *warmup_epochs == 0 || epoch >= *warmup_epochs {
                    *base
                } else {
                    start + (base - start) * epoch as f32 / *warmup_epochs as f32
                }
            }
        }
    }

    /// Materialize the schedule as the `(epoch, lr)` change-points the
    /// [`crate::TrainConfig`] consumes (one entry per epoch where the
    /// rate changes, plus epoch 0).
    pub fn change_points(&self, total_epochs: usize) -> Vec<(usize, f32)> {
        let mut points = Vec::new();
        let mut last = f32::NAN;
        for e in 0..total_epochs {
            let lr = self.at(e);
            if points.is_empty() || (lr - last).abs() > f32::EPSILON * lr.abs().max(1.0) {
                points.push((e, lr));
                last = lr;
            }
        }
        points
    }

    /// The paper's ResNet-50 recipe: ×0.1 at 1/3, 2/3 and 8/9 of the
    /// budget (epochs 30/60/80 of 90).
    pub fn paper_resnet50(base: f32, total_epochs: usize) -> Self {
        LrSchedule::MultiStep {
            base,
            gamma: 0.1,
            milestones: vec![total_epochs / 3, 2 * total_epochs / 3, total_epochs * 8 / 9],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.1 };
        assert_eq!(s.at(0), 0.1);
        assert_eq!(s.at(100), 0.1);
        assert_eq!(s.change_points(5), vec![(0, 0.1)]);
    }

    #[test]
    fn multistep_matches_paper_recipe() {
        let s = LrSchedule::paper_resnet50(0.4, 90);
        assert!((s.at(0) - 0.4).abs() < 1e-7);
        assert!((s.at(29) - 0.4).abs() < 1e-7);
        assert!((s.at(30) - 0.04).abs() < 1e-7);
        assert!((s.at(60) - 0.004).abs() < 1e-7);
        assert!((s.at(80) - 0.0004).abs() < 1e-7);
        let pts = s.change_points(90);
        assert_eq!(
            pts.iter().map(|p| p.0).collect::<Vec<_>>(),
            vec![0, 30, 60, 80]
        );
    }

    #[test]
    fn cosine_endpoints_and_midpoint() {
        let s = LrSchedule::Cosine {
            base: 1.0,
            min_lr: 0.0,
            total_epochs: 100,
        };
        assert!((s.at(0) - 1.0).abs() < 1e-6);
        assert!((s.at(50) - 0.5).abs() < 1e-6);
        assert!(s.at(99) < 0.01);
        assert_eq!(s.at(100), 0.0);
        assert_eq!(s.at(500), 0.0);
        // Monotone decreasing.
        for e in 0..99 {
            assert!(s.at(e + 1) <= s.at(e) + 1e-7);
        }
    }

    #[test]
    fn warmup_ramps_linearly_then_holds() {
        let s = LrSchedule::Warmup {
            start: 0.01,
            base: 0.4,
            warmup_epochs: 5,
        };
        assert!((s.at(0) - 0.01).abs() < 1e-7);
        let mid = s.at(2);
        assert!(mid > 0.01 && mid < 0.4);
        assert!((s.at(5) - 0.4).abs() < 1e-7);
        assert!((s.at(50) - 0.4).abs() < 1e-7);
    }

    #[test]
    fn degenerate_horizons_are_safe() {
        assert_eq!(
            LrSchedule::Cosine {
                base: 1.0,
                min_lr: 0.1,
                total_epochs: 0
            }
            .at(0),
            0.1
        );
        assert_eq!(
            LrSchedule::Warmup {
                start: 0.0,
                base: 0.3,
                warmup_epochs: 0
            }
            .at(0),
            0.3
        );
    }

    #[test]
    fn change_points_reconstruct_the_schedule() {
        let s = LrSchedule::MultiStep {
            base: 0.2,
            gamma: 0.5,
            milestones: vec![2, 4],
        };
        let pts = s.change_points(6);
        // Reconstruct and compare.
        for e in 0..6 {
            let lr = pts.iter().rev().find(|(at, _)| *at <= e).unwrap().1;
            assert_eq!(lr, s.at(e), "epoch {e}");
        }
    }
}
