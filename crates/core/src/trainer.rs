//! The trainer: spawns the parameter server and N worker threads, runs
//! the full training, and aggregates metrics.

use crate::config::{Topology, TrainConfig};
use crate::metrics::{AbortRecord, EpochMetrics, TrainingHistory};
use crate::profile::Profiler;
use crate::supervise::{PoisonBarrier, RestartBudget};
use crate::worker::{run_worker, EpochReport, WorkerArgs};
use cdsgd_data::Dataset;
use cdsgd_nn::Sequential;
use cdsgd_ps::{
    build_ring_group, build_tree_group, Collective, CollectiveGroup, ElasticConfig, FaultyClient,
    InProcessBackend, NetError, NullClient, ParamClient, ParamServer, PsBackend, ServerConfig,
    TrafficStats, WireMode,
};
use cdsgd_telemetry::{Event, Telemetry};
use cdsgd_tensor::SmallRng64;
use crossbeam::channel::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often the supervisor wakes while waiting on worker reports to
/// check for dead workers and server-side failure verdicts.
const SUPERVISE_TICK: Duration = Duration::from_millis(50);

/// A training run that stopped early: the typed error plus everything
/// that completed before the failure ([`TrainingHistory::aborted`] says
/// where it stopped).
#[derive(Debug)]
pub struct TrainFailure {
    /// The failure that ended the run (typically
    /// [`NetError::WorkerLost`]).
    pub error: NetError,
    /// Metrics of the epochs that completed before the abort.
    pub history: TrainingHistory,
}

impl std::fmt::Display for TrainFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.history.aborted {
            Some(a) => write!(f, "training aborted at epoch {}: {}", a.epoch, self.error),
            None => write!(f, "training aborted: {}", self.error),
        }
    }
}

impl std::error::Error for TrainFailure {}

/// Builds a model from an RNG. Every worker calls this with the *same*
/// seed so all replicas (and the server's initial weights) agree.
pub type ModelBuilder = dyn Fn(&mut SmallRng64) -> Sequential + Send + Sync;

/// Orchestrates one distributed training run.
pub struct Trainer {
    cfg: TrainConfig,
    builder: Arc<ModelBuilder>,
    train: Dataset,
    test: Option<Dataset>,
}

impl Trainer {
    /// Create a trainer. `builder` must be deterministic in the RNG.
    ///
    /// # Panics
    /// Panics on a structurally invalid algorithm (see
    /// [`crate::config::ConfigError`]) — configs built through
    /// [`TrainConfig::new`]/[`TrainConfig::try_new`] are already valid,
    /// but struct-literal updates can bypass that check.
    pub fn new(
        cfg: TrainConfig,
        builder: impl Fn(&mut SmallRng64) -> Sequential + Send + Sync + 'static,
        train: Dataset,
        test: Option<Dataset>,
    ) -> Self {
        cfg.algo.validate().unwrap_or_else(|e| panic!("{e}"));
        Self {
            cfg,
            builder: Arc::new(builder),
            train,
            test,
        }
    }

    /// Iterations every worker runs per epoch (the smallest shard's full
    /// batches; all workers must agree or the synchronous server stalls).
    pub fn iters_per_epoch(&self) -> usize {
        let n = self.cfg.num_workers;
        (0..n)
            .map(|w| self.train.shard(w, n).len() / self.cfg.batch_size)
            .min()
            .unwrap_or(0)
    }

    /// Run to completion on an in-process parameter server, returning
    /// the per-epoch history.
    ///
    /// # Panics
    /// Panics if any shard is smaller than one batch.
    pub fn run(&self) -> TrainingHistory {
        let telemetry = self.cfg.telemetry.clone();
        self.run_with(move |init, cfg| {
            Ok(Box::new(InProcessBackend::new(ParamServer::start_traced(
                init, cfg, telemetry,
            ))))
        })
        .expect("in-process backend cannot fail to connect")
    }

    /// Run to completion against a parameter-server deployment produced
    /// by `backend` — in-process threads, loopback transports, local TCP
    /// shards, or external `psd` processes ([`cdsgd_ps::NetCluster`]).
    /// The wire protocol is bit-deterministic, so every backend yields
    /// the same [`TrainingHistory`] for the same config and seed.
    ///
    /// On failure the partial history is discarded; use
    /// [`Trainer::try_run_with`] to keep it.
    ///
    /// # Panics
    /// Panics if any shard is smaller than one batch.
    pub fn run_with(
        &self,
        backend: impl FnOnce(Vec<Vec<f32>>, ServerConfig) -> Result<Box<dyn PsBackend>, NetError>,
    ) -> Result<TrainingHistory, NetError> {
        self.try_run_with(backend).map_err(|f| f.error)
    }

    /// Like [`Trainer::run_with`], but a failed run returns the typed
    /// error *and* the partial [`TrainingHistory`] (completed epochs plus
    /// an [`AbortRecord`]) instead of discarding it.
    ///
    /// The run is supervised: a worker that exits with an error, panics,
    /// or goes silent past [`TrainConfig::epoch_deadline`] cancels the
    /// remaining workers (poisoned barrier + backend shutdown) and the
    /// run returns [`NetError::WorkerLost`] within a bounded time instead
    /// of deadlocking on the epoch barrier.
    ///
    /// # Panics
    /// Panics if any shard is smaller than one batch.
    pub fn try_run_with(
        &self,
        backend: impl FnOnce(Vec<Vec<f32>>, ServerConfig) -> Result<Box<dyn PsBackend>, NetError>,
    ) -> Result<TrainingHistory, Box<TrainFailure>> {
        let n = self.cfg.num_workers;
        let ipe = self.iters_per_epoch();
        assert!(
            ipe > 0,
            "dataset too small: every worker needs at least one full batch"
        );

        // Identical init on every replica and on the server.
        let mut rng = SmallRng64::new(self.cfg.seed);
        let mut proto = (self.builder)(&mut rng);
        let init = proto.export_params();
        let num_keys = init.len();

        let mut server_cfg =
            ServerConfig::new(n, self.cfg.global_lr).with_optimizer(self.cfg.server_opt);
        if let Some(bps) = self.cfg.net_bytes_per_sec {
            server_cfg = server_cfg.with_network_bandwidth(bps);
        }
        if let Some(d) = self.cfg.round_deadline {
            server_cfg = server_cfg.with_round_deadline(d);
        }
        // Scripted departures switch the server into elastic membership:
        // a worker's `Leave` shrinks the round quorum instead of tripping
        // the fixed-membership failure paths. Empty departures keep the
        // server byte-for-byte on the fixed path.
        let depart_epoch: Vec<Option<usize>> = (0..n)
            .map(|w| {
                self.cfg
                    .departures
                    .iter()
                    .find(|&&(dw, _)| dw == w)
                    .map(|&(_, e)| e)
            })
            .collect();
        if !self.cfg.departures.is_empty() {
            assert!(
                !self.cfg.algo.uses_ring(),
                "scripted departures need a parameter server; the all-reduce ring is fixed-membership"
            );
            server_cfg = server_cfg.with_elastic(ElasticConfig::new(1));
        }

        let mut history = TrainingHistory {
            algo: self.cfg.algo.name(),
            num_workers: n,
            epochs: Vec::with_capacity(self.cfg.epochs),
            final_weights: Vec::new(),
            profile: None,
            aborted: None,
        };
        // No workers are running yet: setup errors fail without cleanup.
        let ps = match backend(init, server_cfg) {
            Ok(ps) => ps,
            Err(e) => return Err(fail(history, e, 0, 0, &self.cfg.telemetry)),
        };
        // Server-less algorithms get one collective handle per worker.
        // A backend that *owns* the collectives (AllReduceBackend /
        // DecentralizedBackend over loopback or TCP) surrenders them
        // here; otherwise the trainer builds the group itself on the
        // topology the config names.
        let use_ring = self.cfg.algo.uses_ring();
        type Members = Vec<Option<Box<dyn Collective>>>;
        let (mut ring_members, ring_stats): (Members, Option<Arc<TrafficStats>>) = if use_ring {
            let group: Result<CollectiveGroup, NetError> = match ps.take_collectives(n) {
                Some(g) => Ok(g),
                None => match self.cfg.topology {
                    Topology::Tree => build_tree_group(n, WireMode::Loopback),
                    _ => build_ring_group(n, WireMode::Memory),
                },
            };
            let group = match group {
                Ok(g) => g,
                Err(e) => {
                    // No workers running yet; just close the backend.
                    ps.shutdown();
                    return Err(fail(history, e, 0, 0, &self.cfg.telemetry));
                }
            };
            let stats = Arc::clone(&group.stats);
            (group.members.into_iter().map(Some).collect(), Some(stats))
        } else {
            (Vec::new(), None)
        };
        let profiler = self
            .cfg
            .profile
            .then(|| Profiler::with_telemetry(self.cfg.telemetry.clone()));
        let barrier = Arc::new(PoisonBarrier::new(n + 1));
        let (report_tx, report_rx) = crossbeam::channel::unbounded::<EpochReport>();

        let mut handles: Vec<Option<JoinHandle<Result<(), NetError>>>> = Vec::with_capacity(n);
        #[allow(clippy::needless_range_loop)]
        for w in 0..n {
            let mut wrng = SmallRng64::new(self.cfg.seed);
            let model = (self.builder)(&mut wrng);
            let client = match ps.client() {
                Ok(c) => c,
                Err(e) => {
                    return Err(abort(
                        ps,
                        &barrier,
                        &mut handles,
                        history,
                        e,
                        0,
                        ipe,
                        &self.cfg.telemetry,
                    ));
                }
            };
            // Scripted chaos: the designated victim gets a client that
            // executes the fault.
            let client: Box<dyn ParamClient> = match self.cfg.fault {
                Some((victim, fault)) if victim == w => {
                    Box::new(FaultyClient::new(client, fault, num_keys))
                }
                _ => client,
            };
            let args = WorkerArgs {
                id: w,
                cfg: self.cfg.clone(),
                model,
                shard: self.train.shard(w, n),
                test: if w == 0 { self.test.clone() } else { None },
                client,
                collective: if use_ring {
                    ring_members[w].take()
                } else {
                    None
                },
                iters_per_epoch: ipe,
                barrier: Arc::clone(&barrier),
                report: report_tx.clone(),
                profiler: profiler.as_ref().map(|p| p.worker(w)),
            };
            handles.push(Some(
                std::thread::Builder::new()
                    .name(format!("worker-{w}"))
                    .spawn(move || run_worker(args))
                    .expect("spawn worker"),
            ));
        }
        // Hot worker replacement (DESIGN.md §14): when the policy grants
        // restarts, keep everything needed to rebuild a lost worker's
        // thread mid-run. The replacement resumes at the first epoch the
        // victim never finished — bit-identical when the loss was
        // epoch-aligned (the victim pushed exactly its completed epochs'
        // rounds), because the replacement continues the same per-worker
        // push queue at the same positions.
        let mut respawner = (self.cfg.restart.max_restarts > 0).then(|| {
            assert!(
                !use_ring,
                "hot worker replacement needs a parameter server; \
                 the all-reduce ring is fixed-membership"
            );
            Respawner {
                cfg: &self.cfg,
                builder: &self.builder,
                train: &self.train,
                test: &self.test,
                barrier: &barrier,
                report: report_tx.clone(),
                profiler: &profiler,
                ipe,
                budget: self.cfg.restart.budget(),
            }
        });
        drop(report_tx);

        let mut epoch_start = Instant::now();
        let (mut prev_push, mut prev_pull) = (0u64, 0u64);
        for epoch in 0..self.cfg.epochs {
            // Apply lr decay scheduled for this epoch before it runs...
            // (workers are still blocked on the previous barrier for
            // epoch > 0; for epoch 0 they haven't pushed yet).
            for &(at, lr) in &self.cfg.lr_schedule {
                if at == epoch {
                    if let Err(e) = ps.set_lr(lr) {
                        return Err(abort(
                            ps,
                            &barrier,
                            &mut handles,
                            history,
                            e,
                            epoch,
                            ipe,
                            &self.cfg.telemetry,
                        ));
                    }
                }
            }
            if epoch > 0 {
                // Release workers into this epoch and restart the clock.
                // Every worker already reported epoch-1 and reached the
                // barrier (reporting and waiting are adjacent, infallible
                // steps), so this wait cannot hang on a dead worker.
                barrier.wait().expect("only the supervisor poisons");
                epoch_start = Instant::now();
            }

            let mut loss_sum = 0.0f64;
            let mut acc_sum = 0.0f64;
            let mut batches = 0usize;
            let mut test_acc = None;
            let mut reported = vec![false; n];
            // A worker departing at epoch `d` reports epochs `0..d` and
            // then exits cleanly: expect one fewer report from `d` on.
            let departed: Vec<bool> = depart_epoch
                .iter()
                .map(|d| d.is_some_and(|e| e <= epoch))
                .collect();
            let expected = departed.iter().filter(|&&d| !d).count();
            for _ in 0..expected {
                let r = match self.await_report(
                    &report_rx,
                    ps.as_ref(),
                    &mut handles,
                    &mut respawner,
                    &reported,
                    &departed,
                    epoch_start,
                    epoch,
                    ipe,
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        return Err(abort(
                            ps,
                            &barrier,
                            &mut handles,
                            history,
                            e,
                            epoch,
                            ipe,
                            &self.cfg.telemetry,
                        ));
                    }
                };
                assert_eq!(r.epoch, epoch, "epoch skew from worker {}", r.worker);
                reported[r.worker] = true;
                loss_sum += r.loss_sum;
                acc_sum += r.acc_sum;
                batches += r.batches;
                if r.test_acc.is_some() {
                    test_acc = r.test_acc;
                }
                if let Some(w) = r.final_weights {
                    history.final_weights = w;
                }
            }
            let cum_push = ring_stats
                .as_ref()
                .map_or_else(|| ps.bytes_pushed(), |s| s.bytes_pushed());
            let cum_pull = ring_stats
                .as_ref()
                .map_or_else(|| ps.bytes_pulled(), |s| s.bytes_pulled());
            let m = EpochMetrics {
                epoch,
                train_loss: (loss_sum / batches as f64) as f32,
                train_acc: (acc_sum / batches as f64) as f32,
                test_acc,
                epoch_time_s: epoch_start.elapsed().as_secs_f64(),
                cumulative_push_bytes: cum_push,
                cumulative_pull_bytes: cum_pull,
                epoch_push_bytes: cum_push - prev_push,
                epoch_pull_bytes: cum_pull - prev_pull,
            };
            (prev_push, prev_pull) = (cum_push, cum_pull);
            self.cfg.telemetry.emit(|| Event::Epoch {
                epoch,
                train_loss: m.train_loss,
                train_acc: m.train_acc,
                test_acc: m.test_acc,
                seconds: m.epoch_time_s,
                push_bytes: m.cumulative_push_bytes,
                pull_bytes: m.cumulative_pull_bytes,
            });
            history.epochs.push(m);
        }
        // Release workers from the final barrier so they can exit. They
        // still drain their last outstanding pulls, which needs a live
        // server — join before shutting the backend down.
        drop(respawner);
        barrier.wait().expect("only the supervisor poisons");
        for w in 0..n {
            // Departed workers may already have been reaped by the
            // supervisor when their thread finished mid-run.
            let Some(h) = handles[w].take() else { continue };
            if let Some(e) = join_error(h.join(), w, self.cfg.epochs, ipe) {
                return Err(abort(
                    ps,
                    &barrier,
                    &mut handles,
                    history,
                    e,
                    self.cfg.epochs,
                    ipe,
                    &self.cfg.telemetry,
                ));
            }
        }
        if history.final_weights.is_empty() {
            match ps.snapshot() {
                Ok((weights, _)) => history.final_weights = weights,
                Err(e) => {
                    return Err(abort(
                        ps,
                        &barrier,
                        &mut handles,
                        history,
                        e,
                        self.cfg.epochs,
                        ipe,
                        &self.cfg.telemetry,
                    ));
                }
            }
        }
        history.profile = profiler.map(|p| p.take());
        ps.shutdown();
        self.cfg.telemetry.flush();
        Ok(history)
    }

    /// Wait for the next epoch report, supervising the worker threads:
    /// returns `Err` with a typed [`NetError`] if a worker has died
    /// (error exit or panic), the backend reports a failed round, or the
    /// epoch deadline passes with workers still silent. When a restart
    /// policy is armed (`respawner` is `Some`), a lost worker is replaced
    /// in place and supervision continues instead of failing the run.
    #[allow(clippy::too_many_arguments)]
    fn await_report(
        &self,
        report_rx: &Receiver<EpochReport>,
        ps: &dyn PsBackend,
        handles: &mut [Option<JoinHandle<Result<(), NetError>>>],
        respawner: &mut Option<Respawner<'_>>,
        reported: &[bool],
        departed: &[bool],
        epoch_start: Instant,
        epoch: usize,
        ipe: usize,
    ) -> Result<EpochReport, NetError> {
        loop {
            match report_rx.recv_timeout(SUPERVISE_TICK) {
                Ok(r) => return Ok(r),
                Err(RecvTimeoutError::Disconnected) => {
                    // Every worker exited without the missing reports:
                    // join them all and surface the first failure.
                    for (w, slot) in handles.iter_mut().enumerate() {
                        let Some(h) = slot.take() else { continue };
                        if let Some(e) = join_error(h.join(), w, epoch, ipe) {
                            return Err(e);
                        }
                    }
                    // All exited cleanly yet reports are missing — the
                    // abort machinery still needs an error to carry.
                    return Err(NetError::ServerGone);
                }
                Err(RecvTimeoutError::Timeout) => {}
            }
            // A worker thread that finished before reporting this epoch
            // died (clean early exit mid-training is also a loss) —
            // unless it departed by script, in which case a clean exit is
            // the expected outcome and only a failed goodbye is an error.
            for (w, slot) in handles.iter_mut().enumerate() {
                if slot.as_ref().is_some_and(|h| h.is_finished()) {
                    let h = slot.take().expect("checked above");
                    if departed[w] {
                        if let Some(e) = join_error(h.join(), w, epoch, ipe) {
                            return Err(e);
                        }
                        continue;
                    }
                    let e = join_error(h.join(), w, epoch, ipe).unwrap_or(NetError::WorkerLost {
                        id: w,
                        round: first_round(epoch, ipe),
                    });
                    // Hot replacement: a restart policy turns the loss
                    // into a recoverable event. The replacement resumes
                    // at the first epoch the victim never finished —
                    // this epoch if its report is still missing, the
                    // next one if it died after reporting.
                    if let Some(r) = respawner.as_mut() {
                        let resume_epoch = if reported[w] { epoch + 1 } else { epoch };
                        if resume_epoch < self.cfg.epochs {
                            if let Some(handle) = r.respawn(ps, w, resume_epoch) {
                                if let NetError::WorkerLost { id, round } = &e {
                                    let (id, round) = (*id, *round);
                                    self.cfg.telemetry.emit(|| Event::WorkerLost { id, round });
                                }
                                eprintln!(
                                    "supervisor: worker {w} lost during epoch {epoch}; \
                                     replacement resumes at epoch {resume_epoch} \
                                     ({} restarts left)",
                                    r.budget.remaining()
                                );
                                *slot = Some(handle);
                                continue;
                            }
                        }
                    }
                    return Err(e);
                }
            }
            // The server may have failed the round (its deadline names
            // the victim even when every worker is silently blocked).
            if let Some(e) = ps.failure() {
                return Err(e);
            }
            // Last resort: silence past the epoch deadline. Blame the
            // lowest-id worker that has not reported this epoch.
            if let Some(deadline) = self.cfg.epoch_deadline {
                if epoch_start.elapsed() > deadline {
                    // Blame the lowest-id worker still expected to report
                    // (departed workers never will, by design).
                    let id = (0..reported.len())
                        .find(|&w| !reported[w] && !departed[w])
                        .unwrap_or(0);
                    return Err(NetError::WorkerLost {
                        id,
                        round: first_round(epoch, ipe),
                    });
                }
            }
        }
    }
}

/// Everything the supervisor needs to rebuild a lost worker's thread
/// mid-run, plus the [`RestartBudget`] governing how many times and how
/// fast. Constructed only when [`crate::supervise::RestartPolicy`] grants
/// restarts, so default runs keep the exact report-channel disconnect
/// semantics (the extra `Sender` clone would otherwise mask them).
struct Respawner<'a> {
    cfg: &'a TrainConfig,
    builder: &'a Arc<ModelBuilder>,
    train: &'a Dataset,
    test: &'a Option<Dataset>,
    barrier: &'a Arc<PoisonBarrier>,
    report: Sender<EpochReport>,
    profiler: &'a Option<Profiler>,
    ipe: usize,
    budget: RestartBudget,
}

impl Respawner<'_> {
    /// Try to replace lost worker `w`, resuming at `start_epoch`. Sleeps
    /// the budget's backoff before spawning. `None` when the budget is
    /// exhausted or the backend refuses a fresh connection — the caller
    /// then fails the run exactly as it would without a policy.
    ///
    /// The replacement rebuilds the model from the run's seed, resumes
    /// via [`TrainConfig::start_epoch`] (worker checkpoints, when
    /// configured, restore its private state; otherwise it re-bases on
    /// the server's globals), and never re-arms a scripted fault.
    fn respawn(
        &mut self,
        ps: &dyn PsBackend,
        w: usize,
        start_epoch: usize,
    ) -> Option<JoinHandle<Result<(), NetError>>> {
        let delay = self.budget.grant()?;
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        let client = match ps.client() {
            Ok(c) => c,
            Err(e) => {
                eprintln!("supervisor: cannot reconnect replacement for worker {w}: {e}");
                return None;
            }
        };
        let mut wrng = SmallRng64::new(self.cfg.seed);
        let model = (self.builder)(&mut wrng);
        let mut cfg = self.cfg.clone();
        cfg.start_epoch = start_epoch;
        cfg.fault = None;
        let n = cfg.num_workers;
        let args = WorkerArgs {
            id: w,
            cfg,
            model,
            shard: self.train.shard(w, n),
            test: if w == 0 { self.test.clone() } else { None },
            client,
            collective: None,
            iters_per_epoch: self.ipe,
            barrier: Arc::clone(self.barrier),
            report: self.report.clone(),
            profiler: self.profiler.as_ref().map(|p| p.worker(w)),
        };
        std::thread::Builder::new()
            .name(format!("worker-{w}r{}", self.budget.used()))
            .spawn(move || run_worker(args))
            .ok()
    }
}

/// The first aggregate round of `epoch` — the abort records' best
/// estimate of where a failure stopped the run when the error itself
/// does not carry a round.
fn first_round(epoch: usize, ipe: usize) -> u64 {
    (epoch * ipe) as u64
}

/// Interpret a joined worker's outcome. `None` for a clean exit. An
/// existing [`NetError::WorkerLost`] passes through unchanged (it names
/// the true victim — this worker may merely have observed the failure);
/// any other error or a panic becomes `WorkerLost` for worker `w`.
fn join_error(
    outcome: std::thread::Result<Result<(), NetError>>,
    w: usize,
    epoch: usize,
    ipe: usize,
) -> Option<NetError> {
    match outcome {
        Ok(Ok(())) => None,
        Ok(Err(e @ NetError::WorkerLost { .. })) => Some(e),
        Ok(Err(_)) | Err(_) => Some(NetError::WorkerLost {
            id: w,
            round: first_round(epoch, ipe),
        }),
    }
}

/// Attach the abort record, emit the supervision events, and box the
/// failure.
fn fail(
    mut history: TrainingHistory,
    error: NetError,
    epoch: usize,
    ipe: usize,
    tel: &Telemetry,
) -> Box<TrainFailure> {
    let round = match &error {
        NetError::WorkerLost { round, .. } => *round,
        _ => first_round(epoch, ipe),
    };
    if let NetError::WorkerLost { id, round } = &error {
        let (id, round) = (*id, *round);
        tel.emit(|| Event::WorkerLost { id, round });
    }
    tel.emit(|| Event::Abort {
        epoch,
        round,
        error: error.to_string(),
    });
    tel.flush();
    history.aborted = Some(AbortRecord {
        epoch,
        round,
        error: error.to_string(),
    });
    Box::new(TrainFailure { error, history })
}

/// Cancel a failed run without hanging: poison the barrier (wakes every
/// worker parked at an epoch rendezvous), shut the backend down (fails
/// every blocked or future parameter-server call with a typed error —
/// which also terminates workers still mid-computation at their next
/// push/pull), then join what's left and attach the abort record.
#[allow(clippy::too_many_arguments)]
fn abort(
    ps: Box<dyn PsBackend>,
    barrier: &PoisonBarrier,
    handles: &mut [Option<JoinHandle<Result<(), NetError>>>],
    history: TrainingHistory,
    error: NetError,
    epoch: usize,
    ipe: usize,
    tel: &Telemetry,
) -> Box<TrainFailure> {
    barrier.poison(error.clone());
    ps.shutdown();
    for h in handles.iter_mut().filter_map(Option::take) {
        let _ = h.join();
    }
    fail(history, error, epoch, ipe, tel)
}

/// Run one worker as its own OS process against remote parameter-server
/// shards (the engine of the `worker` binary).
///
/// `client` is this worker's connection (typically from
/// [`cdsgd_ps::NetCluster::connect`] via [`PsBackend::client`]). Data
/// sharding, iteration counts, model init, and the update sequence are
/// identical to the in-process [`Trainer::run`], so a multi-process
/// deployment with the same seed reaches the same weights bit-for-bit.
///
/// Returns per-epoch `(mean train loss, test accuracy)` — the accuracy is
/// `Some` only on worker 0, which owns the test set by convention.
pub fn run_standalone_worker(
    cfg: TrainConfig,
    id: usize,
    builder: impl Fn(&mut SmallRng64) -> Sequential,
    train: &Dataset,
    test: Option<Dataset>,
    client: Box<dyn ParamClient>,
) -> Result<Vec<(f32, Option<f32>)>, NetError> {
    run_standalone(cfg, id, builder, train, test, client, None)
}

/// Run one worker as its own OS process as a member of a *server-less*
/// collective deployment (`worker --topology ring|tree|decentralized`):
/// no parameter server exists, so the worker's only communication is the
/// `collective` handle — typically a [`cdsgd_ps::WireRing`] or
/// [`cdsgd_ps::WireTree`] connected to the peer workers over TCP.
/// Everything else (sharding, iteration counts, model init, update
/// sequence) matches [`run_standalone_worker`], so a multi-process ring
/// all-reduce run reaches bit-identical weights to the in-process one.
///
/// # Panics
/// Panics unless [`crate::Algorithm::uses_ring`] holds — a PS algorithm
/// handed a collective would train against the erroring [`NullClient`].
pub fn run_standalone_collective(
    cfg: TrainConfig,
    id: usize,
    builder: impl Fn(&mut SmallRng64) -> Sequential,
    train: &Dataset,
    test: Option<Dataset>,
    collective: Box<dyn Collective>,
) -> Result<Vec<(f32, Option<f32>)>, NetError> {
    assert!(
        cfg.algo.uses_ring(),
        "{} is a parameter-server algorithm; a collective topology needs arsgd",
        cfg.algo.name()
    );
    run_standalone(
        cfg,
        id,
        builder,
        train,
        test,
        Box::new(NullClient::new()),
        Some(collective),
    )
}

fn run_standalone(
    cfg: TrainConfig,
    id: usize,
    builder: impl Fn(&mut SmallRng64) -> Sequential,
    train: &Dataset,
    test: Option<Dataset>,
    client: Box<dyn ParamClient>,
    collective: Option<Box<dyn Collective>>,
) -> Result<Vec<(f32, Option<f32>)>, NetError> {
    let n = cfg.num_workers;
    assert!(id < n, "worker id {id} out of range for {n} workers");
    cfg.algo.validate().unwrap_or_else(|e| panic!("{e}"));
    let ipe = (0..n)
        .map(|w| train.shard(w, n).len() / cfg.batch_size)
        .min()
        .unwrap_or(0);
    assert!(
        ipe > 0,
        "dataset too small: every worker needs at least one full batch"
    );
    let mut wrng = SmallRng64::new(cfg.seed);
    let model = (builder)(&mut wrng);
    let epochs = cfg.epochs;
    let telemetry = cfg.telemetry.clone();
    let (report_tx, report_rx) = crossbeam::channel::unbounded::<EpochReport>();
    // Drain reports as they arrive, so epoch rollup events stream out
    // live (with real per-epoch wall-clock) instead of all at exit. Push
    // and pull byte totals are zero here: a standalone worker's traffic
    // lives in its client-side frame events, not in this rollup.
    let drainer = std::thread::Builder::new()
        .name("worker-report-drain".into())
        .spawn(move || {
            let mut epoch_start = Instant::now();
            let mut out = vec![(0.0, None); epochs];
            for r in report_rx.iter() {
                let batches = r.batches.max(1) as f64;
                let loss = (r.loss_sum / batches) as f32;
                let acc = (r.acc_sum / batches) as f32;
                telemetry.emit(|| Event::Epoch {
                    epoch: r.epoch,
                    train_loss: loss,
                    train_acc: acc,
                    test_acc: r.test_acc,
                    seconds: epoch_start.elapsed().as_secs_f64(),
                    push_bytes: 0,
                    pull_bytes: 0,
                });
                epoch_start = Instant::now();
                out[r.epoch] = (loss, r.test_acc);
            }
            telemetry.flush();
            out
        })
        .expect("spawn report drain thread");
    let args = WorkerArgs {
        id,
        shard: train.shard(id, n),
        test: if id == 0 { test } else { None },
        cfg,
        model,
        client,
        collective,
        iters_per_epoch: ipe,
        // No trainer thread to rendezvous with: a 1-party barrier makes
        // every `wait` a no-op.
        barrier: Arc::new(PoisonBarrier::new(1)),
        report: report_tx,
        profiler: None,
    };
    // `args` (and with it the report sender) drops when the worker
    // returns, ending the drainer's loop — join it even on error so the
    // rollup events are flushed before the caller sees the failure.
    let result = run_worker(args);
    let out = drainer.join().expect("report drain thread");
    result?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Algorithm;
    use cdsgd_data::toy;
    use cdsgd_nn::models;

    fn blob_trainer(algo: Algorithm, workers: usize, epochs: usize) -> Trainer {
        let data = toy::gaussian_blobs(480, 8, 4, 0.6, 9);
        let (train, test) = data.split(0.8);
        let cfg = TrainConfig::new(algo, workers)
            .with_lr(0.2)
            .with_batch_size(16)
            .with_epochs(epochs)
            .with_seed(5);
        Trainer::new(cfg, |rng| models::mlp(&[8, 32, 4], rng), train, Some(test))
    }

    #[test]
    fn ssgd_learns_blobs() {
        let h = blob_trainer(Algorithm::SSgd, 2, 6).run();
        assert_eq!(h.epochs.len(), 6);
        let acc = h.final_test_acc().unwrap();
        assert!(acc > 0.9, "test acc {acc}");
        // Loss decreases overall.
        assert!(h.epochs.last().unwrap().train_loss < h.epochs[0].train_loss);
    }

    #[test]
    fn all_algorithms_learn_blobs() {
        for algo in [
            Algorithm::OdSgd { local_lr: 0.05 },
            Algorithm::BitSgd { threshold: 0.05 },
            Algorithm::cd_sgd(0.05, 0.05, 2, 10),
            Algorithm::ecq_sgd(0.05, 0.9, 0.9),
        ] {
            let name = algo.name();
            let h = blob_trainer(algo, 2, 8).run();
            let acc = h.final_test_acc().unwrap();
            assert!(acc > 0.85, "{name} test acc {acc}");
        }
    }

    #[test]
    fn four_workers_match_two_workers_roughly() {
        let h2 = blob_trainer(Algorithm::SSgd, 2, 5).run();
        let h4 = blob_trainer(Algorithm::SSgd, 4, 5).run();
        let a2 = h2.final_test_acc().unwrap();
        let a4 = h4.final_test_acc().unwrap();
        assert!((a2 - a4).abs() < 0.15, "2w {a2} vs 4w {a4}");
    }

    #[test]
    fn compression_reduces_push_traffic() {
        let ssgd = blob_trainer(Algorithm::SSgd, 2, 2).run();
        let bit = blob_trainer(Algorithm::BitSgd { threshold: 0.05 }, 2, 2).run();
        let raw = ssgd.epochs.last().unwrap().cumulative_push_bytes;
        let cmp = bit.epochs.last().unwrap().cumulative_push_bytes;
        assert!(
            (cmp as f64) < (raw as f64) / 8.0,
            "compressed {cmp} should be ≪ raw {raw}"
        );
    }

    #[test]
    fn cd_traffic_between_bit_and_ssgd() {
        let ssgd = blob_trainer(Algorithm::SSgd, 2, 2).run();
        let bit = blob_trainer(Algorithm::BitSgd { threshold: 0.05 }, 2, 2).run();
        // warmup 0 so traffic is directly comparable.
        let cd = blob_trainer(Algorithm::cd_sgd(0.05, 0.05, 4, 0), 2, 2).run();
        let s = ssgd.epochs.last().unwrap().cumulative_push_bytes;
        let b = bit.epochs.last().unwrap().cumulative_push_bytes;
        let c = cd.epochs.last().unwrap().cumulative_push_bytes;
        assert!(
            c > b,
            "CD {c} pushes more than BIT {b} (corrections are raw)"
        );
        assert!(c < s, "CD {c} pushes less than S-SGD {s}");
    }

    #[test]
    fn lr_schedule_is_applied() {
        // Decaying lr to 0 at epoch 1 freezes the weights: test accuracy
        // stops changing.
        let data = toy::gaussian_blobs(200, 4, 2, 0.4, 3);
        let (train, test) = data.split(0.8);
        let cfg = TrainConfig::new(Algorithm::SSgd, 2)
            .with_lr(0.2)
            .with_batch_size(10)
            .with_epochs(3)
            .with_lr_decay(1, 0.0);
        let h = Trainer::new(cfg, |rng| models::mlp(&[4, 2], rng), train, Some(test)).run();
        let a1 = h.epochs[1].test_acc.unwrap();
        let a2 = h.epochs[2].test_acc.unwrap();
        assert_eq!(a1, a2, "weights should be frozen after lr 0");
    }

    #[test]
    fn scripted_departure_completes_training() {
        let data = toy::gaussian_blobs(480, 8, 4, 0.6, 9);
        let (train, test) = data.split(0.8);
        let cfg = TrainConfig::new(Algorithm::SSgd, 3)
            .with_lr(0.2)
            .with_batch_size(16)
            .with_epochs(6)
            .with_seed(5)
            .with_departure(2, 2);
        let h = Trainer::new(cfg, |rng| models::mlp(&[8, 32, 4], rng), train, Some(test)).run();
        assert_eq!(h.epochs.len(), 6, "all epochs complete after the leave");
        assert!(h.aborted.is_none());
        let acc = h.final_test_acc().unwrap();
        assert!(acc > 0.85, "survivors keep learning: test acc {acc}");
    }

    #[test]
    fn two_departures_leave_a_solo_survivor() {
        let data = toy::gaussian_blobs(480, 8, 4, 0.6, 9);
        let (train, test) = data.split(0.8);
        let cfg = TrainConfig::new(Algorithm::cd_sgd(0.05, 0.05, 2, 10), 3)
            .with_lr(0.2)
            .with_batch_size(16)
            .with_epochs(5)
            .with_seed(5)
            .with_departure(1, 1)
            .with_departure(2, 3);
        let h = Trainer::new(cfg, |rng| models::mlp(&[8, 32, 4], rng), train, Some(test)).run();
        assert_eq!(h.epochs.len(), 5);
        assert!(h.aborted.is_none());
        assert!(!h.final_weights.is_empty());
    }

    #[test]
    #[should_panic(expected = "cannot depart")]
    fn worker_zero_cannot_depart() {
        TrainConfig::new(Algorithm::SSgd, 2).with_departure(0, 1);
    }

    #[test]
    #[should_panic(expected = "dataset too small")]
    fn undersized_shard_panics() {
        let data = toy::gaussian_blobs(8, 4, 2, 0.4, 3);
        let cfg = TrainConfig::new(Algorithm::SSgd, 2).with_batch_size(16);
        Trainer::new(cfg, |rng| models::mlp(&[4, 2], rng), data, None).run();
    }
}
