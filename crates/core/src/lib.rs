//! # cd-sgd
//!
//! The paper's contribution: **CD-SGD** (distributed SGD with compression
//! and delay compensation) plus the three algorithms it is evaluated
//! against — S-SGD, OD-SGD (the local-update mechanism) and BIT-SGD
//! (MXNet 2-bit quantization) — implemented over the `cdsgd-ps`
//! parameter server with real multi-threaded workers.
//!
//! The semantics follow the paper's Algorithm 1 exactly:
//!
//! * **Warm-up phase** — `n` plain S-SGD iterations to stabilize weights.
//! * **Formal phase** — each worker computes gradients on its *local*
//!   weights, immediately applies the local update
//!   `W^loc_{i+1} = W_i − lr_loc · grad_i` (eq. 11) so the next iteration
//!   never waits on communication, pushes either a 2-bit compressed
//!   gradient (`count % k ≠ 0`) or the raw 32-bit gradient (the k-step
//!   correction), and defers the pull of the previous round's global
//!   weights until the local update actually needs them.
//! * The server applies `W ← W − η/N Σ decode(grad)` (eq. 10).
//!
//! ```no_run
//! use cd_sgd::{Algorithm, TrainConfig, Trainer};
//! use cdsgd_data::synth;
//! use cdsgd_nn::models;
//!
//! let data = synth::mnist_like(2_000, 42);
//! let (train, test) = data.split(0.9);
//! let cfg = TrainConfig::new(Algorithm::cd_sgd(0.4, 0.5, 2, 30), 2)
//!     .with_lr(0.1)
//!     .with_epochs(3);
//! let trainer = Trainer::new(cfg, |rng| models::lenet5(10, rng), train, Some(test));
//! let history = trainer.run();
//! println!("final test acc {:?}", history.final_test_acc());
//! ```

pub mod checkpoint;
pub mod config;
pub mod convergence;
pub mod lr;
pub mod metrics;
pub mod profile;
pub mod recover;
mod strategy;
pub mod supervise;
pub mod trainer;
mod worker;

pub use cdsgd_ps::{ServerOptKind, WorkerFault};
pub use cdsgd_telemetry as telemetry;
pub use cdsgd_telemetry::{
    AggregateSink, Console, Event, JsonlSink, MemorySink, NullSink, Sink, Telemetry,
};
pub use checkpoint::SaveError;
pub use config::{Algorithm, Codec, ConfigError, Topology, TrainConfig};
pub use lr::LrSchedule;
pub use metrics::{AbortRecord, EpochMetrics, TrainingHistory};
pub use recover::WorkerCheckpoint;
pub use supervise::{PoisonBarrier, RestartBudget, RestartPolicy};
pub use trainer::{run_standalone_collective, run_standalone_worker, TrainFailure, Trainer};
