//! Checkpointing: persist global weights and run histories to disk.
//!
//! Weights round-trip through a compact JSON envelope with a format tag
//! and per-key lengths, so a checkpoint can be validated against a model
//! before import. Histories export as JSON for plotting.

use crate::metrics::TrainingHistory;
use cdsgd_nn::Sequential;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::path::Path;

/// Why a checkpoint could not be written or read. Replaces the old
/// `.expect("checkpoint serializes")` panic: callers decide whether a
/// failed save aborts the run or just logs and continues.
#[derive(Debug)]
pub enum SaveError {
    /// The envelope could not be serialized (e.g. a non-finite float
    /// under a strict JSON writer).
    Serialize(serde_json::Error),
    /// The filesystem rejected the write.
    Io(std::io::Error),
}

impl fmt::Display for SaveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SaveError::Serialize(e) => write!(f, "checkpoint failed to serialize: {e}"),
            SaveError::Io(e) => write!(f, "checkpoint write failed: {e}"),
        }
    }
}

impl std::error::Error for SaveError {}

impl From<std::io::Error> for SaveError {
    fn from(e: std::io::Error) -> Self {
        SaveError::Io(e)
    }
}

impl From<serde_json::Error> for SaveError {
    fn from(e: serde_json::Error) -> Self {
        SaveError::Serialize(e)
    }
}

/// Write `bytes` to `path` durably: a sibling temp file is written,
/// fsynced, then renamed over `path`, so a crash mid-write can never
/// leave a torn file under the final name.
fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::io::Write;
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    let tmp = path.with_file_name(format!(
        ".{}.tmp-{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    // Make the rename itself durable where the platform allows it.
    if let Some(dir) = dir {
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all().ok();
        }
    }
    Ok(())
}

/// On-disk weight envelope.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Format marker/version.
    pub format: String,
    /// Algorithm that produced the weights (informational).
    pub algo: String,
    /// One vector per parameter key, in model visitation order.
    pub weights: Vec<Vec<f32>>,
}

/// Current checkpoint format tag.
pub const FORMAT: &str = "cdsgd-checkpoint-v1";

impl Checkpoint {
    /// Wrap weights in an envelope.
    pub fn new(algo: impl Into<String>, weights: Vec<Vec<f32>>) -> Self {
        Self {
            format: FORMAT.into(),
            algo: algo.into(),
            weights,
        }
    }

    /// Capture a model's current parameters.
    pub fn from_model(algo: impl Into<String>, model: &mut Sequential) -> Self {
        Self::new(algo, model.export_params())
    }

    /// Write as JSON, atomically (temp file + fsync + rename), so a crash
    /// mid-save never corrupts an existing checkpoint under `path`.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SaveError> {
        let json = serde_json::to_string(self)?;
        write_atomic(path.as_ref(), json.as_bytes())?;
        Ok(())
    }

    /// Read and validate the format tag.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        let ckpt: Checkpoint = serde_json::from_slice(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        if ckpt.format != FORMAT {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown checkpoint format {:?}", ckpt.format),
            ));
        }
        Ok(ckpt)
    }

    /// Import into a model, validating key counts and lengths.
    ///
    /// # Panics
    /// Panics if the checkpoint does not match the model's parameters.
    pub fn apply_to(&self, model: &mut Sequential) {
        model.import_params(&self.weights);
    }
}

/// Export a run history as JSON (for plotting scripts), with the same
/// atomic-write discipline as [`Checkpoint::save`].
pub fn save_history(history: &TrainingHistory, path: impl AsRef<Path>) -> Result<(), SaveError> {
    let json = serde_json::to_string_pretty(history)?;
    write_atomic(path.as_ref(), json.as_bytes())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsgd_nn::models;
    use cdsgd_tensor::SmallRng64;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cdsgd_ckpt_{}_{name}", std::process::id()))
    }

    #[test]
    fn weight_round_trip() {
        let mut rng = SmallRng64::new(1);
        let mut model = models::mlp(&[4, 8, 2], &mut rng);
        let ckpt = Checkpoint::from_model("S-SGD", &mut model);
        let path = tmp("roundtrip.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);

        // Apply to a differently-initialized model: weights match after.
        let mut rng2 = SmallRng64::new(99);
        let mut other = models::mlp(&[4, 8, 2], &mut rng2);
        assert_ne!(other.export_params(), model.export_params());
        loaded.apply_to(&mut other);
        assert_eq!(other.export_params(), model.export_params());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_and_leaves_no_temp_files() {
        let dir = tmp("atomicdir");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("w.json");
        let ckpt = Checkpoint::new("S-SGD", vec![vec![1.0, 2.0]]);
        ckpt.save(&path).unwrap();
        // Overwriting an existing checkpoint goes through the same
        // temp+rename path and must not leave droppings behind.
        ckpt.save(&path).unwrap();
        let entries: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            entries,
            vec!["w.json".to_string()],
            "stray files: {entries:?}"
        );
        assert_eq!(Checkpoint::load(&path).unwrap(), ckpt);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn save_into_missing_directory_is_a_typed_error_not_a_panic() {
        let ckpt = Checkpoint::new("S-SGD", vec![vec![1.0]]);
        let err = ckpt
            .save(tmp("no_such_dir").join("w.json"))
            .expect_err("directory does not exist");
        assert!(matches!(err, SaveError::Io(_)), "{err}");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn rejects_unknown_format() {
        let path = tmp("badformat.json");
        std::fs::write(&path, r#"{"format":"bogus","algo":"x","weights":[]}"#).unwrap();
        assert!(Checkpoint::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage.json");
        std::fs::write(&path, b"not json").unwrap();
        assert!(Checkpoint::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_model_panics() {
        let mut rng = SmallRng64::new(2);
        let mut small = models::mlp(&[4, 8, 2], &mut rng);
        let ckpt = Checkpoint::from_model("S-SGD", &mut small);
        let mut big = models::mlp(&[4, 16, 2], &mut rng);
        ckpt.apply_to(&mut big);
    }

    #[test]
    fn history_exports_as_json() {
        use crate::metrics::{EpochMetrics, TrainingHistory};
        let h = TrainingHistory {
            algo: "CD-SGD(k=2)".into(),
            num_workers: 2,
            epochs: vec![EpochMetrics {
                epoch: 0,
                train_loss: 1.0,
                train_acc: 0.5,
                test_acc: Some(0.6),
                epoch_time_s: 2.0,
                cumulative_push_bytes: 42,
                cumulative_pull_bytes: 84,
                epoch_push_bytes: 42,
                epoch_pull_bytes: 84,
            }],
            final_weights: vec![vec![1.0]],
            profile: None,
            aborted: None,
        };
        let path = tmp("history.json");
        save_history(&h, &path).unwrap();
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(v["algo"], "CD-SGD(k=2)");
        assert_eq!(v["epochs"][0]["test_acc"], 0.6);
        std::fs::remove_file(&path).ok();
    }
}
