//! Checkpointing: persist global weights and run histories to disk.
//!
//! Weights round-trip through a compact JSON envelope with a format tag
//! and per-key lengths, so a checkpoint can be validated against a model
//! before import. Histories export as JSON for plotting.

use crate::metrics::TrainingHistory;
use cdsgd_nn::Sequential;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// On-disk weight envelope.
#[derive(Serialize, Deserialize, Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Format marker/version.
    pub format: String,
    /// Algorithm that produced the weights (informational).
    pub algo: String,
    /// One vector per parameter key, in model visitation order.
    pub weights: Vec<Vec<f32>>,
}

/// Current checkpoint format tag.
pub const FORMAT: &str = "cdsgd-checkpoint-v1";

impl Checkpoint {
    /// Wrap weights in an envelope.
    pub fn new(algo: impl Into<String>, weights: Vec<Vec<f32>>) -> Self {
        Self {
            format: FORMAT.into(),
            algo: algo.into(),
            weights,
        }
    }

    /// Capture a model's current parameters.
    pub fn from_model(algo: impl Into<String>, model: &mut Sequential) -> Self {
        Self::new(algo, model.export_params())
    }

    /// Write as JSON.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let json = serde_json::to_string(self).expect("checkpoint serializes");
        std::fs::write(path, json)
    }

    /// Read and validate the format tag.
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        let ckpt: Checkpoint = serde_json::from_slice(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        if ckpt.format != FORMAT {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unknown checkpoint format {:?}", ckpt.format),
            ));
        }
        Ok(ckpt)
    }

    /// Import into a model, validating key counts and lengths.
    ///
    /// # Panics
    /// Panics if the checkpoint does not match the model's parameters.
    pub fn apply_to(&self, model: &mut Sequential) {
        model.import_params(&self.weights);
    }
}

/// Export a run history as JSON (for plotting scripts).
pub fn save_history(history: &TrainingHistory, path: impl AsRef<Path>) -> std::io::Result<()> {
    let json = serde_json::to_string_pretty(history).expect("history serializes");
    std::fs::write(path, json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdsgd_nn::models;
    use cdsgd_tensor::SmallRng64;

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("cdsgd_ckpt_{}_{name}", std::process::id()))
    }

    #[test]
    fn weight_round_trip() {
        let mut rng = SmallRng64::new(1);
        let mut model = models::mlp(&[4, 8, 2], &mut rng);
        let ckpt = Checkpoint::from_model("S-SGD", &mut model);
        let path = tmp("roundtrip.json");
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded, ckpt);

        // Apply to a differently-initialized model: weights match after.
        let mut rng2 = SmallRng64::new(99);
        let mut other = models::mlp(&[4, 8, 2], &mut rng2);
        assert_ne!(other.export_params(), model.export_params());
        loaded.apply_to(&mut other);
        assert_eq!(other.export_params(), model.export_params());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_unknown_format() {
        let path = tmp("badformat.json");
        std::fs::write(&path, r#"{"format":"bogus","algo":"x","weights":[]}"#).unwrap();
        assert!(Checkpoint::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage.json");
        std::fs::write(&path, b"not json").unwrap();
        assert!(Checkpoint::load(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_model_panics() {
        let mut rng = SmallRng64::new(2);
        let mut small = models::mlp(&[4, 8, 2], &mut rng);
        let ckpt = Checkpoint::from_model("S-SGD", &mut small);
        let mut big = models::mlp(&[4, 16, 2], &mut rng);
        ckpt.apply_to(&mut big);
    }

    #[test]
    fn history_exports_as_json() {
        use crate::metrics::{EpochMetrics, TrainingHistory};
        let h = TrainingHistory {
            algo: "CD-SGD(k=2)".into(),
            num_workers: 2,
            epochs: vec![EpochMetrics {
                epoch: 0,
                train_loss: 1.0,
                train_acc: 0.5,
                test_acc: Some(0.6),
                epoch_time_s: 2.0,
                cumulative_push_bytes: 42,
                cumulative_pull_bytes: 84,
                epoch_push_bytes: 42,
                epoch_pull_bytes: 84,
            }],
            final_weights: vec![vec![1.0]],
            profile: None,
            aborted: None,
        };
        let path = tmp("history.json");
        save_history(&h, &path).unwrap();
        let v: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(v["algo"], "CD-SGD(k=2)");
        assert_eq!(v["epochs"][0]["test_acc"], 0.6);
        std::fs::remove_file(&path).ok();
    }
}
