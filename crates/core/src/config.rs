//! Algorithm and training-run configuration.

use crate::supervise::RestartPolicy;
use cdsgd_compress::{
    AdaptiveTwoBit, GradientCompressor, OneBitQuantizer, QsgdQuantizer, TopKSparsifier,
    TwoBitQuantizer,
};
use cdsgd_ps::{ServerOptKind, WorkerFault};
use cdsgd_telemetry::Telemetry;
use std::path::PathBuf;
use std::time::Duration;

/// A structurally invalid algorithm or training configuration, detected
/// at construction time — before any worker thread or server spawns.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// `LocalSgd` with `sync_period == 0`: the worker would never sync.
    ZeroSyncPeriod,
    /// `CdSgd` with `k == 0`: the compression schedule `count % k` is
    /// undefined.
    ZeroCorrectionPeriod,
    /// `EfSgd` momentum outside `[0, 1)`: the velocity would diverge.
    InvalidMomentum(f32),
    /// `EcqSgd` error-decay β outside `[0, 1]`: the accumulated
    /// quantization error would grow without bound.
    InvalidErrorDecay(f32),
    /// A training run needs at least one worker.
    NoWorkers,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroSyncPeriod => write!(f, "sync period must be at least 1"),
            ConfigError::ZeroCorrectionPeriod => write!(f, "k must be at least 1"),
            ConfigError::InvalidMomentum(m) => {
                write!(f, "momentum must be in [0, 1), got {m}")
            }
            ConfigError::InvalidErrorDecay(b) => {
                write!(f, "error decay beta must be in [0, 1], got {b}")
            }
            ConfigError::NoWorkers => write!(f, "need at least one worker"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// A gradient-compression codec choice for CD-SGD's compression
/// iterations.
///
/// The paper uses 2-bit threshold quantization; the other codecs
/// implement its stated future work ("explore efficient gradient
/// sparsification algorithms to further improve the training efficiency
/// of CD-SGD").
#[derive(Clone, Debug, PartialEq)]
pub enum Codec {
    /// MXNet-style 2-bit threshold quantization (the paper's choice).
    TwoBit {
        /// Quantization threshold α.
        threshold: f32,
    },
    /// 1-bit sign quantization with error feedback.
    OneBit,
    /// DGC-style Top-k sparsification with error feedback.
    TopK {
        /// Fraction of elements transmitted per push (e.g. 0.01).
        ratio: f64,
    },
    /// QSGD stochastic uniform quantization (no error feedback).
    Qsgd {
        /// Number of quantization levels.
        levels: u8,
        /// Seed for the stochastic rounding.
        seed: u64,
    },
    /// 2-bit quantization with a per-key, per-iteration adaptive
    /// threshold (addresses the paper's §2.3 observation that a single
    /// fixed threshold does not fit all models).
    AdaptiveTwoBit {
        /// Multiplier on the mean absolute corrected gradient.
        scale: f32,
    },
}

impl Codec {
    /// Instantiate the compressor (one per worker; residual state is
    /// worker-local exactly as in the paper).
    pub fn build(&self) -> Box<dyn GradientCompressor> {
        match self {
            Codec::TwoBit { threshold } => Box::new(TwoBitQuantizer::new(*threshold)),
            Codec::OneBit => Box::new(OneBitQuantizer::new()),
            Codec::TopK { ratio } => Box::new(TopKSparsifier::new(*ratio)),
            Codec::Qsgd { levels, seed } => Box::new(QsgdQuantizer::new(*levels, *seed)),
            Codec::AdaptiveTwoBit { scale } => Box::new(AdaptiveTwoBit::new(*scale)),
        }
    }

    /// Short name for run labels.
    pub fn name(&self) -> String {
        match self {
            Codec::TwoBit { .. } => "2bit".into(),
            Codec::OneBit => "1bit".into(),
            Codec::TopK { ratio } => format!("top{:.3}", ratio),
            Codec::Qsgd { levels, .. } => format!("qsgd{levels}"),
            Codec::AdaptiveTwoBit { scale } => format!("2bit-ada{scale}"),
        }
    }
}

/// Which distributed optimization algorithm to run (the four the paper
/// compares in §4).
#[derive(Clone, Debug, PartialEq)]
pub enum Algorithm {
    /// Synchronous SGD: raw gradients, blocking push/pull every iteration.
    SSgd,
    /// OD-SGD / the local-update mechanism: one-step-delayed global
    /// weights with a local correction, raw gradients.
    OdSgd {
        /// Learning rate of the local update (eq. 11).
        local_lr: f32,
    },
    /// MXNet 2-bit quantization, blocking (the paper's BIT-SGD).
    BitSgd {
        /// Quantization threshold α.
        threshold: f32,
    },
    /// The paper's contribution: local update + gradient compression +
    /// k-step correction + warm-up. The paper always uses the
    /// [`Codec::TwoBit`] codec; others are the extension.
    CdSgd {
        /// Learning rate of the local update.
        local_lr: f32,
        /// Compression codec for the compression iterations.
        codec: Codec,
        /// Correction period: k−1 compressed pushes then one raw push.
        k: usize,
        /// Warm-up iterations of plain S-SGD before the formal phase.
        warmup: usize,
        /// Delay-compensation strength λ (0 disables, the paper's
        /// setting). When positive, pushed gradients are corrected for
        /// the one-step weight delay with the DC-ASGD Hessian
        /// approximation `g̃ = g + λ·g⊙g⊙(W_base − W_loc)` [Zheng et al.
        /// 2017] — an extension composing the "delay compensation"
        /// literature with CD-SGD's mechanism.
        dc_lambda: f32,
    },
    /// Local SGD / K-AVG / periodic averaging (the other
    /// communication-reduction family the paper's §1 surveys [Lin et al.
    /// 2019; Zhou & Cong 2018; Haddadpour et al. 2019]): every worker
    /// takes `sync_period` purely local steps, then the accumulated
    /// gradients are averaged through the server — equivalent to
    /// averaging the local models when the local and global rates agree.
    LocalSgd {
        /// Learning rate of the local steps.
        local_lr: f32,
        /// Steps between synchronizations (H); 1 degenerates to S-SGD
        /// when `local_lr == global_lr`.
        sync_period: usize,
    },
    /// Decentralized synchronous SGD over ring all-reduce (the
    /// Horovod-style collective baseline from the paper's related work):
    /// no parameter server; every round the workers mean-reduce their raw
    /// gradients through the ring and apply the update locally.
    ArSgd,
    /// Error-compensated 2-bit quantized SGD after Wu et al., "Error
    /// Compensated Quantized SGD and its Applications to Large-scale
    /// Distributed Optimization" (ECQ-SGD) — an extension leaf. Each
    /// worker pushes a 2-bit threshold quantization of the *corrected*
    /// gradient `c = g + α·e`, then decays the carried error
    /// `e ← β·(c − decode(q(c)))`. With `α = β = 1` this degenerates to
    /// plain error feedback (and is bit-identical to [`Algorithm::BitSgd`]
    /// at the same threshold); `α, β < 1` damp the accumulated error so
    /// stale compensation cannot destabilize the run.
    EcqSgd {
        /// Quantization threshold of the 2-bit codec.
        threshold: f32,
        /// Compensation gain α on the carried error.
        alpha: f32,
        /// Error decay β ∈ [0, 1] applied when the error is re-absorbed.
        beta: f32,
    },
    /// Blockwise momentum SGD with error feedback, after Zheng et al.,
    /// "Communication-Efficient Distributed Blockwise Momentum SGD with
    /// Error-Feedback" (dist-EF-blockSGD) — the first extension variant
    /// the strategy layer exists to host. Each worker keeps a per-key
    /// momentum buffer `m ← μm + g` and pushes a 1-bit sign quantization
    /// of `m + e` with a per-key (blockwise) L1 scale; the quantization
    /// error `e` is fed back next round. The server applies plain SGD to
    /// the decoded aggregate.
    EfSgd {
        /// Momentum factor μ (Zheng et al. use 0.9). Must be in `[0, 1)`.
        momentum: f32,
    },
}

impl Algorithm {
    /// Convenience constructor for the paper's CD-SGD (2-bit codec).
    pub fn cd_sgd(local_lr: f32, threshold: f32, k: usize, warmup: usize) -> Self {
        Self::cd_sgd_with(local_lr, Codec::TwoBit { threshold }, k, warmup)
    }

    /// CD-SGD with an arbitrary codec (the paper's future-work extension).
    pub fn cd_sgd_with(local_lr: f32, codec: Codec, k: usize, warmup: usize) -> Self {
        assert!(k >= 1, "k must be at least 1");
        Algorithm::CdSgd {
            local_lr,
            codec,
            k,
            warmup,
            dc_lambda: 0.0,
        }
    }

    /// Add DC-ASGD-style delay compensation to a CD-SGD configuration
    /// (extension; no effect on other algorithms).
    pub fn with_delay_compensation(mut self, lambda: f32) -> Self {
        if let Algorithm::CdSgd { dc_lambda, .. } = &mut self {
            *dc_lambda = lambda;
        }
        self
    }

    /// Convenience constructor for blockwise error-feedback momentum SGD
    /// (extension).
    ///
    /// # Panics
    /// Panics if `momentum` is outside `[0, 1)`; use
    /// [`Algorithm::validate`] for a typed error.
    pub fn ef_sgd(momentum: f32) -> Self {
        let algo = Algorithm::EfSgd { momentum };
        algo.validate().unwrap_or_else(|e| panic!("{e}"));
        algo
    }

    /// Convenience constructor for error-compensated quantized SGD
    /// (extension).
    ///
    /// # Panics
    /// Panics if `beta` is outside `[0, 1]`; use [`Algorithm::validate`]
    /// for a typed error.
    pub fn ecq_sgd(threshold: f32, alpha: f32, beta: f32) -> Self {
        let algo = Algorithm::EcqSgd {
            threshold,
            alpha,
            beta,
        };
        algo.validate().unwrap_or_else(|e| panic!("{e}"));
        algo
    }

    /// Display name as used in the paper's figures.
    pub fn name(&self) -> String {
        match self {
            Algorithm::SSgd => "S-SGD".into(),
            Algorithm::OdSgd { .. } => "OD-SGD".into(),
            Algorithm::BitSgd { .. } => "BIT-SGD".into(),
            Algorithm::CdSgd { k, .. } => format!("CD-SGD(k={k})"),
            Algorithm::LocalSgd { sync_period, .. } => format!("LocalSGD(H={sync_period})"),
            Algorithm::ArSgd => "AR-SGD".into(),
            Algorithm::EcqSgd { alpha, beta, .. } => format!("ECQ-SGD(a={alpha},b={beta})"),
            Algorithm::EfSgd { momentum } => format!("EF-blockSGD(m={momentum})"),
        }
    }

    /// True for algorithms that keep delayed local weights.
    pub fn is_delayed(&self) -> bool {
        matches!(self, Algorithm::OdSgd { .. } | Algorithm::CdSgd { .. })
    }

    /// True for algorithms that ever push compressed gradients.
    pub fn uses_compression(&self) -> bool {
        matches!(
            self,
            Algorithm::BitSgd { .. }
                | Algorithm::CdSgd { .. }
                | Algorithm::EcqSgd { .. }
                | Algorithm::EfSgd { .. }
        )
    }

    /// True for the server-less ring all-reduce family: the trainer must
    /// build a ring group instead of parameter-server clients.
    pub fn uses_ring(&self) -> bool {
        matches!(self, Algorithm::ArSgd)
    }

    /// Structural validation, run by [`TrainConfig`] and the trainer
    /// before any thread spawns. A `Ok(())` here guarantees the strategy
    /// layer can be built for this algorithm.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            Algorithm::LocalSgd { sync_period: 0, .. } => Err(ConfigError::ZeroSyncPeriod),
            Algorithm::CdSgd { k: 0, .. } => Err(ConfigError::ZeroCorrectionPeriod),
            Algorithm::EfSgd { momentum } if !(0.0..1.0).contains(momentum) => {
                Err(ConfigError::InvalidMomentum(*momentum))
            }
            Algorithm::EcqSgd { beta, .. } if !(0.0..=1.0).contains(beta) => {
                Err(ConfigError::InvalidErrorDecay(*beta))
            }
            _ => Ok(()),
        }
    }
}

/// Which communication topology carries a server-less (ring all-reduce
/// family) run's collective exchanges. Ignored by parameter-server
/// algorithms, which always talk to the PS regardless of this field.
///
/// All three synchronous topologies produce *bit-identical* weights:
/// the reduction order is pinned per chunk (see `cdsgd_ps::collective`),
/// so switching topology is purely a performance/deployment decision.
#[derive(Clone, Debug, PartialEq, Default)]
pub enum Topology {
    /// Default: the in-process ring (or the parameter server, for PS
    /// algorithms) — whatever the trainer would have built before
    /// topologies existed.
    #[default]
    Ps,
    /// Bandwidth-optimal ring all-reduce: each member sends
    /// `2·(N−1)/N` of the vector per round.
    Ring,
    /// Binary-tree reduce + broadcast: `O(log N)` latency hops at the
    /// cost of `(N−1)×` vector ingest at the root. Wins for small
    /// vectors on high-latency links (see DESIGN.md §16).
    Tree,
    /// Decentralized compressed training (Tang et al.): no global
    /// reduction at all — each worker exchanges codec-compressed model
    /// differences with its two ring neighbors and gossip-averages.
    /// Approximate (not bit-identical to the synchronous topologies).
    Decentralized {
        /// Codec compressing the exchanged model differences.
        codec: Codec,
    },
}

impl Topology {
    /// Short name for run labels and bench output.
    pub fn name(&self) -> String {
        match self {
            Topology::Ps => "ps".into(),
            Topology::Ring => "ring".into(),
            Topology::Tree => "tree".into(),
            Topology::Decentralized { codec } => format!("decentralized/{}", codec.name()),
        }
    }
}

/// Configuration of one training run.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// The algorithm under test.
    pub algo: Algorithm,
    /// Number of worker threads (the paper's M).
    pub num_workers: usize,
    /// Global learning rate η used by the server (eq. 10).
    pub global_lr: f32,
    /// Per-worker mini-batch size.
    pub batch_size: usize,
    /// Number of passes over each worker's shard.
    pub epochs: usize,
    /// Seed for model init, shuffling, and augmentation.
    pub seed: u64,
    /// Learning-rate decay points: at the *start* of `epoch`, set the
    /// server lr to `lr` (the paper adjusts at epochs 30/60/80 for
    /// ResNet-50). Kept sorted by epoch with one entry per epoch (the
    /// builders normalize), because both the trainer's server-side
    /// application and AR-SGD's worker-side `current_lr` scan it in
    /// order.
    pub lr_schedule: Vec<(usize, f32)>,
    /// Apply random crop + flip augmentation to training batches
    /// (requires NCHW data).
    pub augment: bool,
    /// Record wall-clock op intervals in every worker (the Fig. 5
    /// profiler methodology applied to this implementation).
    pub profile: bool,
    /// Emulated network bandwidth in bytes/second shared through the
    /// server thread (`None` = in-process speed). Lets the real trainer
    /// reproduce the paper's communication-bound regimes.
    pub net_bytes_per_sec: Option<f64>,
    /// Scripted fault injection: `(worker, fault)` wraps that worker's
    /// parameter-server client in a [`cdsgd_ps::FaultyClient`] executing
    /// the fault. `None` (the default) trains fault-free.
    pub fault: Option<(usize, WorkerFault)>,
    /// How long the trainer waits for an epoch's worker reports before
    /// declaring a silently-stalled worker lost. `None` (the default)
    /// waits unboundedly, matching pre-supervision behaviour for
    /// arbitrarily slow hardware.
    pub epoch_deadline: Option<Duration>,
    /// Server-side round deadline, forwarded to
    /// [`cdsgd_ps::ServerConfig::round_deadline`]: a round left partial
    /// this long fails with `WorkerLost` instead of stalling all pullers.
    pub round_deadline: Option<Duration>,
    /// Server-side optimizer applied to each aggregated round (extension;
    /// the paper's eq. 10 is [`ServerOptKind::PlainSgd`], the default).
    pub server_opt: ServerOptKind,
    /// Scripted graceful departures: `(worker, epoch)` makes that worker
    /// announce `Leave` to the server and exit cleanly at the *start* of
    /// `epoch` (≥ 1). Non-empty departures switch the server into elastic
    /// membership so the remaining workers' rounds re-size their quorum
    /// instead of deadlocking or tripping `WorkerLost`. Empty (the
    /// default) trains with fixed membership, bit-identical to a run
    /// without this field.
    pub departures: Vec<(usize, usize)>,
    /// Cross-layer telemetry sink: every layer of the run (server rounds,
    /// traffic, epoch rollups, aborts — and op spans when
    /// [`TrainConfig::profile`] is on) emits typed events into it.
    /// Disabled by default, in which case no event is even constructed.
    pub telemetry: Telemetry,
    /// Hot worker replacement (DESIGN.md §14): when a worker dies mid-run
    /// and the budget grants a restart, the supervisor respawns a
    /// replacement resuming from the start of the epoch the victim never
    /// finished, instead of aborting with `WorkerLost`. The default
    /// policy (zero restarts) keeps every loss fatal — recovery is
    /// strictly opt-in.
    pub restart: RestartPolicy,
    /// First epoch index this run executes (default 0). A resuming
    /// worker sets this to the number of epochs already completed: data
    /// shuffles for the skipped epochs are replayed to fast-forward the
    /// RNG, and the strategy re-bases on the server's weights at round
    /// `start_epoch * iters_per_epoch` before the first batch.
    pub start_epoch: usize,
    /// Directory for per-worker durable snapshots ([`crate::recover`]).
    /// `None` (the default) writes nothing.
    pub worker_ckpt_dir: Option<PathBuf>,
    /// Write a worker checkpoint every this many *epochs* (worker state
    /// is only consistent at epoch boundaries). Ignored without
    /// [`TrainConfig::worker_ckpt_dir`].
    pub worker_ckpt_every: usize,
    /// Collective topology for server-less algorithms (see [`Topology`]).
    /// Ignored (must stay [`Topology::Ps`]) for PS algorithms.
    pub topology: Topology,
}

impl TrainConfig {
    /// A config with the defaults used throughout the paper's
    /// experiments: lr 0.1, batch 32, 10 epochs.
    ///
    /// # Panics
    /// Panics on a structurally invalid configuration; use
    /// [`TrainConfig::try_new`] for a typed [`ConfigError`].
    pub fn new(algo: Algorithm, num_workers: usize) -> Self {
        Self::try_new(algo, num_workers).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`TrainConfig::new`] but returns a [`ConfigError`] instead of
    /// panicking on an invalid algorithm (zero sync period / zero k /
    /// out-of-range momentum) or zero workers.
    pub fn try_new(algo: Algorithm, num_workers: usize) -> Result<Self, ConfigError> {
        if num_workers == 0 {
            return Err(ConfigError::NoWorkers);
        }
        algo.validate()?;
        Ok(Self {
            algo,
            num_workers,
            global_lr: 0.1,
            batch_size: 32,
            epochs: 10,
            seed: 42,
            lr_schedule: Vec::new(),
            augment: false,
            profile: false,
            net_bytes_per_sec: None,
            fault: None,
            epoch_deadline: None,
            round_deadline: None,
            server_opt: ServerOptKind::PlainSgd,
            departures: Vec::new(),
            telemetry: Telemetry::disabled(),
            restart: RestartPolicy::default(),
            start_epoch: 0,
            worker_ckpt_dir: None,
            worker_ckpt_every: 1,
            topology: Topology::Ps,
        })
    }

    /// Set the global learning rate.
    pub fn with_lr(mut self, lr: f32) -> Self {
        self.global_lr = lr;
        self
    }

    /// Set the per-worker batch size.
    pub fn with_batch_size(mut self, b: usize) -> Self {
        assert!(b > 0);
        self.batch_size = b;
        self
    }

    /// Set the number of epochs.
    pub fn with_epochs(mut self, e: usize) -> Self {
        self.epochs = e;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Add an lr-decay point. The schedule is re-normalized (sorted by
    /// epoch, one entry per epoch with the latest addition winning), so
    /// callers may add points in any order.
    pub fn with_lr_decay(mut self, epoch: usize, lr: f32) -> Self {
        self.lr_schedule.push((epoch, lr));
        self.lr_schedule = normalize_schedule(std::mem::take(&mut self.lr_schedule));
        self
    }

    /// Install a full [`crate::LrSchedule`], replacing any existing decay
    /// points (also sets the initial global lr from the schedule's
    /// epoch-0 value).
    pub fn with_schedule(mut self, schedule: &crate::lr::LrSchedule) -> Self {
        let points = schedule.change_points(self.epochs);
        self.global_lr = schedule.at(0);
        self.lr_schedule = normalize_schedule(points.into_iter().filter(|&(e, _)| e > 0).collect());
        self
    }

    /// Script a graceful departure: `worker` leaves the run at the start
    /// of `epoch` (elastic membership; see [`TrainConfig::departures`]).
    pub fn with_departure(mut self, worker: usize, epoch: usize) -> Self {
        assert!(worker < self.num_workers, "departing worker out of range");
        assert!(
            worker != 0,
            "worker 0 evaluates the global model each epoch; it cannot depart"
        );
        assert!(epoch >= 1, "a worker cannot depart before epoch 1");
        assert!(
            !self.departures.iter().any(|&(w, _)| w == worker),
            "worker {worker} already departs"
        );
        self.departures.push((worker, epoch));
        assert!(
            self.departures.len() < self.num_workers,
            "at least one worker must stay for the whole run"
        );
        self
    }

    /// Inject a scripted fault into one worker's parameter-server client
    /// (chaos testing; see [`WorkerFault`]).
    pub fn with_fault(mut self, worker: usize, fault: WorkerFault) -> Self {
        assert!(worker < self.num_workers, "fault worker out of range");
        self.fault = Some((worker, fault));
        self
    }

    /// Bound how long the trainer waits for an epoch's reports before
    /// declaring a silent worker lost.
    pub fn with_epoch_deadline(mut self, deadline: Duration) -> Self {
        self.epoch_deadline = Some(deadline);
        self
    }

    /// Bound how long the server leaves a round partial before failing it
    /// with `WorkerLost`.
    pub fn with_round_deadline(mut self, deadline: Duration) -> Self {
        self.round_deadline = Some(deadline);
        self
    }

    /// Enable data augmentation.
    pub fn with_augment(mut self, on: bool) -> Self {
        self.augment = on;
        self
    }

    /// Enable per-op wall-clock profiling.
    pub fn with_profiling(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }

    /// Emulate a shared network of the given bandwidth (bytes/second).
    pub fn with_emulated_network(mut self, bytes_per_sec: f64) -> Self {
        self.net_bytes_per_sec = Some(bytes_per_sec);
        self
    }

    /// Choose the server-side optimizer (extension; default plain SGD).
    pub fn with_server_opt(mut self, opt: ServerOptKind) -> Self {
        self.server_opt = opt;
        self
    }

    /// Attach a telemetry sink observing the whole run (see
    /// [`TrainConfig::telemetry`]).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Allow hot worker replacement under this policy (see
    /// [`TrainConfig::restart`]).
    pub fn with_restart_policy(mut self, policy: RestartPolicy) -> Self {
        self.restart = policy;
        self
    }

    /// Resume at `epoch` instead of 0 (see [`TrainConfig::start_epoch`]).
    ///
    /// # Panics
    /// Panics if `epoch >= epochs` — a resume past the end is a caller
    /// bug, not a no-op run.
    pub fn with_start_epoch(mut self, epoch: usize) -> Self {
        assert!(
            epoch < self.epochs,
            "start epoch {epoch} must precede the final epoch {}",
            self.epochs
        );
        self.start_epoch = epoch;
        self
    }

    /// Write per-worker durable snapshots into `dir` every `every`
    /// epochs (see [`TrainConfig::worker_ckpt_dir`]).
    ///
    /// # Panics
    /// Panics if `every == 0`.
    pub fn with_worker_checkpoints(mut self, dir: impl Into<PathBuf>, every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be at least 1");
        self.worker_ckpt_dir = Some(dir.into());
        self.worker_ckpt_every = every;
        self
    }

    /// Choose the collective topology for a server-less run (see
    /// [`Topology`]).
    ///
    /// # Panics
    /// Panics when a non-default topology is paired with a
    /// parameter-server algorithm: PS algorithms route every exchange
    /// through the server, so a collective topology would silently be
    /// dead configuration.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        assert!(
            topology == Topology::Ps || self.algo.uses_ring(),
            "topology {} requires a server-less algorithm (arsgd); {} uses the parameter server",
            topology.name(),
            self.algo.name()
        );
        self.topology = topology;
        self
    }
}

/// Sort decay points by epoch (stable, so insertion order breaks ties)
/// and keep only the last entry per epoch.
fn normalize_schedule(mut points: Vec<(usize, f32)>) -> Vec<(usize, f32)> {
    points.sort_by_key(|&(epoch, _)| epoch);
    let mut out: Vec<(usize, f32)> = Vec::with_capacity(points.len());
    for p in points {
        match out.last_mut() {
            Some(last) if last.0 == p.0 => *last = p,
            _ => out.push(p),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(Algorithm::SSgd.name(), "S-SGD");
        assert_eq!(Algorithm::OdSgd { local_lr: 0.1 }.name(), "OD-SGD");
        assert_eq!(Algorithm::BitSgd { threshold: 0.5 }.name(), "BIT-SGD");
        assert_eq!(Algorithm::cd_sgd(0.1, 0.5, 5, 10).name(), "CD-SGD(k=5)");
    }

    #[test]
    fn classification_flags() {
        assert!(!Algorithm::SSgd.is_delayed());
        assert!(!Algorithm::SSgd.uses_compression());
        assert!(Algorithm::OdSgd { local_lr: 0.1 }.is_delayed());
        assert!(Algorithm::BitSgd { threshold: 0.5 }.uses_compression());
        let cd = Algorithm::cd_sgd(0.1, 0.5, 5, 10);
        assert!(cd.is_delayed() && cd.uses_compression());
    }

    #[test]
    #[should_panic(expected = "k must be at least 1")]
    fn zero_k_rejected() {
        Algorithm::cd_sgd(0.1, 0.5, 0, 10);
    }

    #[test]
    fn codec_builders_and_names() {
        assert_eq!(Codec::TwoBit { threshold: 0.5 }.name(), "2bit");
        assert_eq!(Codec::OneBit.name(), "1bit");
        assert_eq!(Codec::TopK { ratio: 0.01 }.name(), "top0.010");
        assert_eq!(Codec::Qsgd { levels: 4, seed: 0 }.name(), "qsgd4");
        // Each codec builds a working compressor.
        for codec in [
            Codec::TwoBit { threshold: 0.5 },
            Codec::OneBit,
            Codec::TopK { ratio: 0.5 },
            Codec::Qsgd { levels: 4, seed: 0 },
        ] {
            let mut c = codec.build();
            let payload = c.compress(0, &[0.9, -0.9]);
            assert_eq!(payload.len(), 2);
        }
    }

    #[test]
    fn cd_sgd_with_custom_codec() {
        let a = Algorithm::cd_sgd_with(0.1, Codec::TopK { ratio: 0.01 }, 5, 10);
        assert!(a.is_delayed() && a.uses_compression());
        if let Algorithm::CdSgd { codec, .. } = &a {
            assert_eq!(codec, &Codec::TopK { ratio: 0.01 });
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn builder_chain() {
        let cfg = TrainConfig::new(Algorithm::SSgd, 4)
            .with_lr(0.4)
            .with_batch_size(64)
            .with_epochs(3)
            .with_seed(7)
            .with_lr_decay(2, 0.04)
            .with_augment(true);
        assert_eq!(cfg.global_lr, 0.4);
        assert_eq!(cfg.batch_size, 64);
        assert_eq!(cfg.epochs, 3);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.lr_schedule, vec![(2, 0.04)]);
        assert!(cfg.augment);
    }

    #[test]
    fn lr_schedule_is_normalized_sorted_and_deduped() {
        // Regression: `current_lr` and the trainer's per-epoch scan both
        // assume the schedule is sorted ascending; an unsorted input used
        // to make AR-SGD's worker-side lr diverge from the server-side
        // application. Points added out of order must come out sorted,
        // and a repeated epoch keeps the latest value.
        let cfg = TrainConfig::new(Algorithm::SSgd, 2)
            .with_lr_decay(5, 0.01)
            .with_lr_decay(2, 0.1)
            .with_lr_decay(2, 0.2);
        assert_eq!(cfg.lr_schedule, vec![(2, 0.2), (5, 0.01)]);
    }

    #[test]
    fn fault_and_deadline_builders() {
        let cfg = TrainConfig::new(Algorithm::SSgd, 2)
            .with_fault(1, WorkerFault::KillAtRound { round: 3 })
            .with_epoch_deadline(Duration::from_secs(5))
            .with_round_deadline(Duration::from_secs(1));
        assert_eq!(cfg.fault, Some((1, WorkerFault::KillAtRound { round: 3 })));
        assert_eq!(cfg.epoch_deadline, Some(Duration::from_secs(5)));
        assert_eq!(cfg.round_deadline, Some(Duration::from_secs(1)));
    }

    #[test]
    #[should_panic(expected = "fault worker out of range")]
    fn fault_worker_must_exist() {
        TrainConfig::new(Algorithm::SSgd, 2).with_fault(2, WorkerFault::KillAtRound { round: 0 });
    }

    #[test]
    fn validate_catches_structural_errors() {
        assert_eq!(
            Algorithm::LocalSgd {
                local_lr: 0.1,
                sync_period: 0,
            }
            .validate(),
            Err(ConfigError::ZeroSyncPeriod)
        );
        assert_eq!(
            Algorithm::CdSgd {
                local_lr: 0.1,
                codec: Codec::OneBit,
                k: 0,
                warmup: 0,
                dc_lambda: 0.0,
            }
            .validate(),
            Err(ConfigError::ZeroCorrectionPeriod)
        );
        assert_eq!(
            Algorithm::EfSgd { momentum: 1.0 }.validate(),
            Err(ConfigError::InvalidMomentum(1.0))
        );
        assert_eq!(
            Algorithm::EfSgd { momentum: -0.1 }.validate(),
            Err(ConfigError::InvalidMomentum(-0.1))
        );
        for ok in [
            Algorithm::SSgd,
            Algorithm::ArSgd,
            Algorithm::cd_sgd(0.1, 0.5, 2, 3),
            Algorithm::ef_sgd(0.9),
            Algorithm::LocalSgd {
                local_lr: 0.1,
                sync_period: 4,
            },
        ] {
            assert_eq!(ok.validate(), Ok(()));
        }
    }

    #[test]
    fn try_new_surfaces_typed_errors() {
        assert_eq!(
            TrainConfig::try_new(Algorithm::SSgd, 0).unwrap_err(),
            ConfigError::NoWorkers
        );
        let err = TrainConfig::try_new(
            Algorithm::LocalSgd {
                local_lr: 0.1,
                sync_period: 0,
            },
            2,
        )
        .unwrap_err();
        assert_eq!(err, ConfigError::ZeroSyncPeriod);
        assert_eq!(err.to_string(), "sync period must be at least 1");
    }

    #[test]
    #[should_panic(expected = "sync period must be at least 1")]
    fn zero_sync_period_rejected_at_construction() {
        TrainConfig::new(
            Algorithm::LocalSgd {
                local_lr: 0.1,
                sync_period: 0,
            },
            2,
        );
    }

    #[test]
    #[should_panic(expected = "need at least one worker")]
    fn zero_workers_rejected() {
        TrainConfig::new(Algorithm::SSgd, 0);
    }

    #[test]
    #[should_panic(expected = "momentum must be in [0, 1)")]
    fn ef_momentum_out_of_range_rejected() {
        Algorithm::ef_sgd(1.5);
    }

    #[test]
    fn server_opt_defaults_to_plain_sgd_and_chains() {
        let cfg = TrainConfig::new(Algorithm::SSgd, 2);
        assert_eq!(cfg.server_opt, ServerOptKind::PlainSgd);
        let cfg = cfg.with_server_opt(ServerOptKind::Nesterov { momentum: 0.9 });
        assert_eq!(cfg.server_opt, ServerOptKind::Nesterov { momentum: 0.9 });
    }

    #[test]
    fn ring_flag_only_for_arsgd() {
        assert!(Algorithm::ArSgd.uses_ring());
        for a in [
            Algorithm::SSgd,
            Algorithm::cd_sgd(0.1, 0.5, 2, 3),
            Algorithm::ef_sgd(0.9),
            Algorithm::ecq_sgd(0.5, 1.0, 1.0),
        ] {
            assert!(!a.uses_ring());
        }
    }

    #[test]
    fn ecq_sgd_classification_and_validation() {
        let a = Algorithm::ecq_sgd(0.5, 0.9, 0.8);
        assert!(a.uses_compression());
        assert!(!a.is_delayed());
        assert_eq!(a.name(), "ECQ-SGD(a=0.9,b=0.8)");
        let err = Algorithm::EcqSgd {
            threshold: 0.5,
            alpha: 1.0,
            beta: 1.5,
        }
        .validate()
        .unwrap_err();
        assert_eq!(err, ConfigError::InvalidErrorDecay(1.5));
        assert_eq!(
            err.to_string(),
            "error decay beta must be in [0, 1], got 1.5"
        );
    }

    #[test]
    #[should_panic(expected = "error decay beta must be in [0, 1]")]
    fn ecq_beta_out_of_range_rejected() {
        Algorithm::ecq_sgd(0.5, 1.0, -0.1);
    }

    #[test]
    fn topology_defaults_to_ps_and_chains_for_arsgd() {
        let cfg = TrainConfig::new(Algorithm::SSgd, 2);
        assert_eq!(cfg.topology, Topology::Ps);
        for topo in [
            Topology::Ring,
            Topology::Tree,
            Topology::Decentralized {
                codec: Codec::TwoBit { threshold: 0.5 },
            },
        ] {
            let cfg = TrainConfig::new(Algorithm::ArSgd, 3).with_topology(topo.clone());
            assert_eq!(cfg.topology, topo);
        }
        // Ps is always allowed (explicit no-op).
        let cfg = TrainConfig::new(Algorithm::SSgd, 2).with_topology(Topology::Ps);
        assert_eq!(cfg.topology, Topology::Ps);
    }

    #[test]
    fn topology_names() {
        assert_eq!(Topology::Ps.name(), "ps");
        assert_eq!(Topology::Ring.name(), "ring");
        assert_eq!(Topology::Tree.name(), "tree");
        assert_eq!(
            Topology::Decentralized {
                codec: Codec::TwoBit { threshold: 0.5 }
            }
            .name(),
            "decentralized/2bit"
        );
    }

    #[test]
    #[should_panic(expected = "requires a server-less algorithm")]
    fn collective_topology_rejected_for_ps_algorithms() {
        TrainConfig::new(Algorithm::SSgd, 2).with_topology(Topology::Ring);
    }
}
