//! Integration tests over the timing substrate: the monotone trends the
//! harness binaries rely on must hold across the whole model zoo.

use cdsgd_simtime::pipeline::{AlgoKind, PipelineSim};
use cdsgd_simtime::{zoo, ClusterSpec, CostInputs, CostModel};

#[test]
fn lower_bandwidth_never_speeds_anything_up() {
    let model = zoo::resnet50();
    for algo in [AlgoKind::Ssgd, AlgoKind::BitSgd, AlgoKind::CdSgd { k: 5 }] {
        let mut prev = 0.0f64;
        for gbps in [100.0f64, 56.0, 10.0, 1.0] {
            let cluster = ClusterSpec::v100_cluster().with_bandwidth_gbps(gbps);
            let t = PipelineSim::new(&model, &cluster, 32)
                .run(algo, 52)
                .avg_iter_time;
            assert!(t >= prev - 1e-12, "{}: {gbps} Gbps got faster", algo.name());
            prev = t;
        }
    }
}

#[test]
fn cd_speedup_over_ssgd_grows_as_bandwidth_shrinks() {
    let model = zoo::resnet50();
    let speedup = |gbps: f64| {
        let cluster = ClusterSpec::v100_cluster().with_bandwidth_gbps(gbps);
        let sim = PipelineSim::new(&model, &cluster, 32);
        sim.run(AlgoKind::Ssgd, 42).avg_iter_time
            / sim.run(AlgoKind::CdSgd { k: 5 }, 52).avg_iter_time
    };
    assert!(speedup(1.0) > speedup(10.0));
    assert!(speedup(10.0) > speedup(100.0) - 1e-9);
}

#[test]
fn every_zoo_model_simulates_cleanly_on_both_clusters() {
    for model in [
        zoo::lenet5(),
        zoo::resnet20(),
        zoo::alexnet(),
        zoo::vgg16(),
        zoo::inception_bn(),
        zoo::resnet50(),
    ] {
        for cluster in [ClusterSpec::k80_cluster(), ClusterSpec::v100_cluster()] {
            for algo in [
                AlgoKind::Ssgd,
                AlgoKind::OdSgd,
                AlgoKind::BitSgd,
                AlgoKind::CdSgd { k: 2 },
            ] {
                let r = PipelineSim::new(&model, &cluster, 32).run(algo, 12);
                assert!(
                    r.avg_iter_time.is_finite() && r.avg_iter_time > 0.0,
                    "{} on {}: bad time",
                    model.name,
                    cluster.gpu.name()
                );
                assert!(r.trace.find_overlap().is_none(), "{}: overlap", model.name);
            }
        }
    }
}

#[test]
fn closed_form_agrees_with_simulator_across_the_zoo() {
    // For the blocking algorithms the single-scalar closed form and the
    // layer-wise simulator must agree within the per-key overhead slack.
    for model in [zoo::alexnet(), zoo::resnet50(), zoo::vgg16()] {
        let cluster = ClusterSpec::v100_cluster();
        let sim = PipelineSim::new(&model, &cluster, 32);
        let cm = CostModel::new(CostInputs::derive(&model, &cluster, 32, 5));
        let ssgd = sim.run(AlgoKind::Ssgd, 42).avg_iter_time;
        let bit = sim.run(AlgoKind::BitSgd, 42).avg_iter_time;
        // Layer-wise scheduling only adds per-message latency; 15% slack.
        assert!(
            (ssgd - cm.t_ssgd()).abs() / cm.t_ssgd() < 0.15,
            "{}: ssgd {ssgd} vs {}",
            model.name,
            cm.t_ssgd()
        );
        assert!(
            (bit - cm.t_bit()).abs() / cm.t_bit() < 0.15,
            "{}: bit {bit} vs {}",
            model.name,
            cm.t_bit()
        );
    }
}

#[test]
fn od_sgd_never_loses_to_ssgd() {
    for model in [
        zoo::alexnet(),
        zoo::resnet50(),
        zoo::vgg16(),
        zoo::inception_bn(),
    ] {
        for cluster in [ClusterSpec::k80_cluster(), ClusterSpec::v100_cluster()] {
            let sim = PipelineSim::new(&model, &cluster, 32);
            let ssgd = sim.run(AlgoKind::Ssgd, 42).avg_iter_time;
            let od = sim.run(AlgoKind::OdSgd, 42).avg_iter_time;
            assert!(
                od <= ssgd * 1.02,
                "{} on {}: OD {od} vs SSGD {ssgd}",
                model.name,
                cluster.gpu.name()
            );
        }
    }
}
