//! Straggler analysis: how synchronization cost scales with worker-speed
//! variance, and how much of it the local-update mechanism's one-round
//! slack absorbs.
//!
//! The paper motivates the local update with S-SGD's central weakness:
//! "S-SGD requires the faster worker nodes to wait for the slower ones to
//! communicate their information per iteration" (§2.1). This module
//! quantifies that: a Monte-Carlo model of N workers with persistent
//! speed ratios and transient (exponential) jitter, under
//!
//! * **blocking** synchronization (S-SGD/BIT-SGD): every round ends at
//!   the *slowest* worker's finish plus communication; and
//! * **delayed** synchronization (OD-SGD/CD-SGD): a worker may run one
//!   round ahead of the global aggregate (the FP_{i+2} gate), so
//!   transient jitter is absorbed by the one-round buffer — but a
//!   *persistently* slow worker still bounds throughput.

/// Tiny xorshift64* PRNG (keeps this crate dependency-free).
#[derive(Clone, Debug)]
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    fn next_f64(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential(1) sample.
    fn exp(&mut self) -> f64 {
        -(1.0 - self.next_f64()).max(1e-300).ln()
    }
}

/// The straggler scenario.
#[derive(Clone, Debug)]
pub struct StragglerSim {
    /// Base computation time per iteration (seconds).
    pub tau: f64,
    /// Communication/aggregation time per round (seconds).
    pub comm: f64,
    /// Transient jitter strength: each worker-round costs
    /// `tau · slowdown · (1 + jitter · Exp(1))`.
    pub jitter: f64,
    /// Persistent per-worker speed multipliers (1.0 = nominal).
    pub slowdowns: Vec<f64>,
}

impl StragglerSim {
    /// A homogeneous cluster of `n` workers.
    pub fn homogeneous(n: usize, tau: f64, comm: f64, jitter: f64) -> Self {
        assert!(n > 0);
        Self {
            tau,
            comm,
            jitter,
            slowdowns: vec![1.0; n],
        }
    }

    /// Make worker 0 persistently `factor`× slower.
    pub fn with_persistent_straggler(mut self, factor: f64) -> Self {
        assert!(factor >= 1.0);
        self.slowdowns[0] = factor;
        self
    }

    fn compute_time(&self, worker: usize, rng: &mut Rng) -> f64 {
        self.tau * self.slowdowns[worker] * (1.0 + self.jitter * rng.exp())
    }

    /// Average iteration time under blocking synchronization: every round
    /// takes `max_i(compute_i) + comm`.
    pub fn blocking_avg(&self, iters: usize, seed: u64) -> f64 {
        assert!(iters > 0);
        let mut rng = Rng::new(seed);
        let mut total = 0.0;
        for _ in 0..iters {
            let slowest = (0..self.slowdowns.len())
                .map(|w| self.compute_time(w, &mut rng))
                .fold(0.0f64, f64::max);
            total += slowest + self.comm;
        }
        total / iters as f64
    }

    /// Average iteration time with the local-update mechanism's one-round
    /// slack: worker w starts round r once it finished round r−1 *and*
    /// round r−2 has been aggregated; round r aggregates `comm` after the
    /// last worker finishes it.
    pub fn delayed_avg(&self, iters: usize, seed: u64) -> f64 {
        assert!(iters > 2);
        let mut rng = Rng::new(seed);
        let n = self.slowdowns.len();
        let mut finish = vec![0.0f64; n]; // worker's last round finish
        let mut agg = vec![0.0f64; iters]; // aggregate completion per round
        for r in 0..iters {
            let gate = if r >= 2 { agg[r - 2] } else { 0.0 };
            let mut last = 0.0f64;
            #[allow(clippy::needless_range_loop)]
            for w in 0..n {
                let start = finish[w].max(gate);
                finish[w] = start + self.compute_time(w, &mut rng);
                last = last.max(finish[w]);
            }
            agg[r] = last + self.comm;
        }
        // Steady-state average, skipping the fill phase.
        (agg[iters - 1] - agg[1]) / (iters - 2) as f64
    }

    /// The sync overhead ratio: blocking over delayed (≥ ~1).
    pub fn absorption_ratio(&self, iters: usize, seed: u64) -> f64 {
        self.blocking_avg(iters, seed) / self.delayed_avg(iters, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_jitter_no_straggler_matches_closed_form() {
        let s = StragglerSim::homogeneous(4, 0.1, 0.02, 0.0);
        let b = s.blocking_avg(200, 1);
        assert!((b - 0.12).abs() < 1e-9, "blocking {b}");
        // Delayed overlaps comm with compute: steady state = max(τ, …) = τ
        // when comm < τ.
        let d = s.delayed_avg(400, 1);
        assert!((d - 0.1).abs() < 1e-3, "delayed {d}");
    }

    #[test]
    fn jitter_hurts_blocking_more_than_delayed() {
        let s = StragglerSim::homogeneous(8, 0.1, 0.01, 0.5);
        let ratio = s.absorption_ratio(2_000, 7);
        assert!(
            ratio > 1.1,
            "one-round slack should absorb jitter, ratio {ratio}"
        );
    }

    #[test]
    fn blocking_cost_grows_with_worker_count() {
        // E[max of n jittered workers] grows with n (the paper's
        // "communication cost tends to worsen when workers increase").
        let avg = |n: usize| StragglerSim::homogeneous(n, 0.1, 0.0, 0.5).blocking_avg(2_000, 3);
        assert!(avg(16) > avg(4));
        assert!(avg(4) > avg(1));
    }

    #[test]
    fn persistent_straggler_bounds_both_modes() {
        // A 3x-slow worker dominates regardless of the one-round slack.
        let s = StragglerSim::homogeneous(4, 0.1, 0.0, 0.0).with_persistent_straggler(3.0);
        let b = s.blocking_avg(500, 5);
        let d = s.delayed_avg(500, 5);
        assert!((b - 0.3).abs() < 1e-6);
        assert!(
            (d - 0.3).abs() < 5e-3,
            "delayed {d} still bounded by the straggler"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let s = StragglerSim::homogeneous(4, 0.1, 0.01, 0.3);
        assert_eq!(s.blocking_avg(100, 9), s.blocking_avg(100, 9));
        assert_eq!(s.delayed_avg(100, 9), s.delayed_avg(100, 9));
    }
}
