//! Op-interval traces and Chrome `trace_event` export — the stand-in for
//! the paper's MXNet-profiler + chrome://tracing methodology (Fig. 5).

use serde::Serialize;

/// The execution resource an operation occupied.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Resource {
    /// GPU compute stream (FP, BP, local update).
    Compute,
    /// Quantization/encode stream.
    Quant,
    /// Network (push + aggregate + pull).
    Net,
}

impl Resource {
    /// Stable thread id used in the Chrome trace.
    pub fn tid(self) -> u32 {
        match self {
            Resource::Compute => 0,
            Resource::Quant => 1,
            Resource::Net => 2,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Resource::Compute => "FP/BP",
            Resource::Quant => "Quantization",
            Resource::Net => "Communication",
        }
    }
}

/// One operation interval.
#[derive(Clone, Debug, Serialize)]
pub struct TraceEvent {
    /// Resource the op ran on.
    pub resource: Resource,
    /// Op name, e.g. "FP", "BP", "quant", "comm", "local_update".
    pub op: String,
    /// Training iteration the op belongs to.
    pub iter: usize,
    /// Layer index (or `usize::MAX` for whole-model ops).
    pub layer: usize,
    /// Start time in seconds.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

/// An ordered collection of [`TraceEvent`]s.
#[derive(Clone, Debug, Default)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an interval.
    pub fn record(
        &mut self,
        resource: Resource,
        op: impl Into<String>,
        iter: usize,
        layer: usize,
        start: f64,
        end: f64,
    ) {
        debug_assert!(end >= start, "negative-duration event");
        self.events.push(TraceEvent {
            resource,
            op: op.into(),
            iter,
            layer,
            start,
            end,
        });
    }

    /// All events in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events on one resource, sorted by start time.
    pub fn on(&self, resource: Resource) -> Vec<&TraceEvent> {
        let mut v: Vec<&TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.resource == resource)
            .collect();
        v.sort_by(|a, b| a.start.total_cmp(&b.start));
        v
    }

    /// Verify no two events on the same resource overlap (each resource is
    /// a serial queue). Returns the first violating pair if any.
    pub fn find_overlap(&self) -> Option<(TraceEvent, TraceEvent)> {
        for r in [Resource::Compute, Resource::Quant, Resource::Net] {
            let evs = self.on(r);
            for w in evs.windows(2) {
                if w[1].start < w[0].end - 1e-12 {
                    return Some(((*w[0]).clone(), (*w[1]).clone()));
                }
            }
        }
        None
    }

    /// Busy fraction of a resource over `[0, horizon]`.
    pub fn utilization(&self, resource: Resource, horizon: f64) -> f64 {
        if horizon <= 0.0 {
            return 0.0;
        }
        let busy: f64 = self
            .events
            .iter()
            .filter(|e| e.resource == resource)
            .map(|e| e.end - e.start)
            .sum();
        busy / horizon
    }

    /// Export in Chrome `trace_event` JSON (load via chrome://tracing or
    /// Perfetto), timestamps in microseconds.
    pub fn to_chrome_json(&self, process_name: &str) -> String {
        #[derive(Serialize)]
        struct Ev<'a> {
            name: &'a str,
            cat: &'a str,
            ph: &'a str,
            ts: f64,
            dur: f64,
            pid: u32,
            tid: u32,
        }
        #[derive(Serialize)]
        struct Meta<'a> {
            name: &'a str,
            ph: &'a str,
            pid: u32,
            tid: u32,
            args: serde_json::Value,
        }
        let mut out: Vec<serde_json::Value> = Vec::new();
        out.push(
            serde_json::to_value(Meta {
                name: "process_name",
                ph: "M",
                pid: 0,
                tid: 0,
                args: serde_json::json!({ "name": process_name }),
            })
            .expect("serialize meta"),
        );
        for r in [Resource::Compute, Resource::Quant, Resource::Net] {
            out.push(
                serde_json::to_value(Meta {
                    name: "thread_name",
                    ph: "M",
                    pid: 0,
                    tid: r.tid(),
                    args: serde_json::json!({ "name": r.name() }),
                })
                .expect("serialize meta"),
            );
        }
        for e in &self.events {
            let name = format!("{}#{} L{}", e.op, e.iter, e.layer);
            out.push(
                serde_json::to_value(Ev {
                    name: &name,
                    cat: e.resource.name(),
                    ph: "X",
                    ts: e.start * 1e6,
                    dur: (e.end - e.start) * 1e6,
                    pid: 0,
                    tid: e.resource.tid(),
                })
                .expect("serialize event"),
            );
        }
        serde_json::to_string_pretty(&out).expect("serialize trace")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut log = TraceLog::new();
        log.record(Resource::Compute, "FP", 0, 0, 0.0, 1.0);
        log.record(Resource::Net, "comm", 0, 0, 1.0, 3.0);
        log.record(Resource::Compute, "BP", 0, 0, 1.0, 2.0);
        assert_eq!(log.events().len(), 3);
        assert_eq!(log.on(Resource::Compute).len(), 2);
        assert!(log.find_overlap().is_none());
    }

    #[test]
    fn detects_overlap_on_same_resource() {
        let mut log = TraceLog::new();
        log.record(Resource::Net, "a", 0, 0, 0.0, 2.0);
        log.record(Resource::Net, "b", 0, 0, 1.0, 3.0);
        assert!(log.find_overlap().is_some());
    }

    #[test]
    fn cross_resource_overlap_is_fine() {
        let mut log = TraceLog::new();
        log.record(Resource::Compute, "a", 0, 0, 0.0, 2.0);
        log.record(Resource::Net, "b", 0, 0, 0.0, 2.0);
        assert!(log.find_overlap().is_none());
    }

    #[test]
    fn utilization_fraction() {
        let mut log = TraceLog::new();
        log.record(Resource::Compute, "a", 0, 0, 0.0, 1.0);
        log.record(Resource::Compute, "b", 0, 0, 2.0, 3.0);
        assert!((log.utilization(Resource::Compute, 4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn chrome_json_is_valid_and_has_metadata() {
        let mut log = TraceLog::new();
        log.record(Resource::Quant, "quant", 3, 1, 0.5, 0.7);
        let json = log.to_chrome_json("BIT-SGD");
        let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = parsed.as_array().unwrap();
        // 1 process meta + 3 thread metas + 1 event.
        assert_eq!(arr.len(), 5);
        let ev = arr.last().unwrap();
        assert_eq!(ev["ph"], "X");
        assert!((ev["ts"].as_f64().unwrap() - 0.5e6).abs() < 1e-6);
        assert!((ev["dur"].as_f64().unwrap() - 0.2e6).abs() < 1e-6);
    }
}
