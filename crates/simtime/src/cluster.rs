//! Hardware specifications of the simulated clusters.
//!
//! Per-model GPU throughput is *empirical* (public fp32 benchmark numbers
//! at batch 32), not derived from peak FLOPs — sustained efficiency varies
//! wildly across architectures (cuDNN conv kernels vs. giant FC GEMMs),
//! and the paper's who-wins structure depends on exactly that ratio of
//! compute to communication. See `zoo::ModelSpec::throughput`.

use serde::{Deserialize, Serialize};

/// GPU generations used in the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuKind {
    /// Tesla K80 (one GK210 die), the paper's "limited computing power"
    /// cluster: computation tends to be the bottleneck.
    K80,
    /// Tesla V100: compute is fast, so communication dominates.
    V100,
}

impl GpuKind {
    /// Sustained gradient-encode throughput (bytes/s) for the 2-bit
    /// quantization kernel's byte-proportional part.
    pub fn encode_throughput(self) -> f64 {
        match self {
            GpuKind::K80 => 6.0e9,
            GpuKind::V100 => 15.0e9,
        }
    }

    /// Fixed per-tensor launch/setup overhead of the 2-bit encode path.
    /// For small-tensor models (ResNet-20's ~65 keys) this fixed part,
    /// not the byte rate, is most of the paper's δ — Fig. 5 shows visible
    /// per-layer quantization bars while the whole iteration is ~20 ms,
    /// which bounds the per-key cost to the ~100 µs scale.
    pub fn quant_launch_overhead(self) -> f64 {
        match self {
            GpuKind::K80 => 1.0e-4,
            GpuKind::V100 => 5.0e-5,
        }
    }

    /// Effective device memory bandwidth (bytes/s) used for the local
    /// weight-update op in OD-SGD/CD-SGD (read grad + read/write weights).
    pub fn mem_bandwidth(self) -> f64 {
        match self {
            GpuKind::K80 => 1.4e11,
            GpuKind::V100 => 6.0e11,
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            GpuKind::K80 => "K80",
            GpuKind::V100 => "V100",
        }
    }
}

/// A homogeneous cluster: `nodes` machines, `gpus_per_node` workers each,
/// one NIC per node shared by its workers.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// GPU generation of every worker.
    pub gpu: GpuKind,
    /// Number of machines.
    pub nodes: usize,
    /// Workers (GPU dies) per machine.
    pub gpus_per_node: usize,
    /// NIC line rate in bits per second (e.g. 56 Gbps InfiniBand).
    pub link_bandwidth_bps: f64,
    /// One-way per-message overhead in seconds. Dominated by the PS
    /// software stack (per-key request handling), not the wire: ~100 µs,
    /// which is why many-small-key models pay a startup cost per layer
    /// (the LAGS-SGD critique the paper cites).
    pub latency_s: f64,
}

impl ClusterSpec {
    /// The paper's K80 cluster: 4 nodes × 2 dual-GPU K80 (4 dies),
    /// 56 Gbps InfiniBand.
    pub fn k80_cluster() -> Self {
        Self {
            gpu: GpuKind::K80,
            nodes: 4,
            gpus_per_node: 4,
            link_bandwidth_bps: 56.0e9,
            latency_s: 1.0e-4,
        }
    }

    /// The paper's V100 cluster: 4 nodes × 4 V100, 56 Gbps InfiniBand.
    pub fn v100_cluster() -> Self {
        Self {
            gpu: GpuKind::V100,
            nodes: 4,
            gpus_per_node: 4,
            link_bandwidth_bps: 56.0e9,
            latency_s: 1.0e-4,
        }
    }

    /// A low-bandwidth variant (the paper's future-work setting and its
    /// intro's 1 Gbps Ethernet example).
    pub fn with_bandwidth_gbps(mut self, gbps: f64) -> Self {
        self.link_bandwidth_bps = gbps * 1e9;
        self
    }

    /// Use `n` worker nodes with one GPU each (the paper's M=2 / M=4
    /// convergence-experiment configuration).
    pub fn with_single_gpu_nodes(mut self, n: usize) -> Self {
        self.nodes = n;
        self.gpus_per_node = 1;
        self
    }

    /// Total worker count N.
    pub fn num_workers(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Effective per-worker bandwidth in bytes/s: the node NIC is shared
    /// by its co-located workers.
    pub fn worker_bandwidth(&self) -> f64 {
        self.link_bandwidth_bps / 8.0 / self.gpus_per_node as f64
    }

    /// Time for the cluster to complete one push/pull round in which each
    /// worker sends `wire_bytes` to the (node-sharded) servers and
    /// receives `pull_bytes` back.
    ///
    /// PS communication model per [Shi et al. 2020; Xu et al. 2019] with
    /// two physical refinements: server shards are co-located one per
    /// node, so only a `(nodes−1)/nodes` fraction of each worker's bytes
    /// crosses the NIC; and InfiniBand is **full duplex**, so the wall
    /// time is set by the larger direction through the node's NIC, not
    /// the sum.
    pub fn comm_time(&self, wire_bytes: f64, pull_bytes: f64) -> f64 {
        let frac = if self.nodes > 1 {
            (self.nodes as f64 - 1.0) / self.nodes as f64
        } else {
            0.0
        };
        let node_bytes = self.gpus_per_node as f64 * frac * wire_bytes.max(pull_bytes);
        2.0 * self.latency_s + node_bytes / (self.link_bandwidth_bps / 8.0)
    }

    /// Time for a ring allreduce of a `bytes`-sized vector across all N
    /// workers (the `--topology ring` collective, DESIGN.md §16).
    ///
    /// The classic α–β model [Thakur et al. 2005]: 2(N−1) pipeline steps,
    /// each paying one hop latency, and every member sending exactly
    /// 2(N−1)/N of the vector in total — the bandwidth-optimal volume.
    /// Ring time is latency-bound for small vectors (2(N−1) serial hops)
    /// and bandwidth-optimal for large ones.
    pub fn ring_allreduce_time(&self, bytes: f64) -> f64 {
        let n = self.num_workers() as f64;
        if n <= 1.0 {
            return 0.0;
        }
        2.0 * (n - 1.0) * self.latency_s + 2.0 * (n - 1.0) / n * bytes / self.worker_bandwidth()
    }

    /// Time for a binary-tree allreduce (`--topology tree`): leaves send
    /// raw vectors up ⌈log₂N⌉ levels, the root folds them in the pinned
    /// ring order, and the result broadcasts back down. Latency scales
    /// with the tree depth (2⌈log₂N⌉ hops), but the root's NIC receives
    /// N−1 whole vectors — bandwidth-suboptimal by a factor ~N/2 versus
    /// the ring, which is exactly the trade the crossover point captures.
    pub fn tree_allreduce_time(&self, bytes: f64) -> f64 {
        let n = self.num_workers() as f64;
        if n <= 1.0 {
            return 0.0;
        }
        let depth = (self.num_workers() as f64).log2().ceil();
        2.0 * depth * self.latency_s + ((n - 1.0) + depth) * bytes / self.worker_bandwidth()
    }

    /// The vector size (bytes) at which the ring allreduce becomes
    /// faster than the tree: below this, the tree's ⌈log₂N⌉-deep latency
    /// beats the ring's 2(N−1) serial hops; above it, the ring's
    /// 2(N−1)/N bandwidth optimality wins. Solves
    /// `ring_allreduce_time(b) == tree_allreduce_time(b)` for `b`;
    /// returns 0 when the ring is never slower (N ≤ 2, where both
    /// topologies degenerate to the same exchange).
    pub fn allreduce_crossover_bytes(&self) -> f64 {
        let n = self.num_workers() as f64;
        if n <= 1.0 {
            return 0.0;
        }
        let depth = (self.num_workers() as f64).log2().ceil();
        let lat_gap = 2.0 * (n - 1.0 - depth) * self.latency_s;
        let bw_gap = ((n - 1.0) + depth - 2.0 * (n - 1.0) / n) / self.worker_bandwidth();
        if lat_gap <= 0.0 || bw_gap <= 0.0 {
            return 0.0;
        }
        lat_gap / bw_gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_cluster_shapes() {
        let k80 = ClusterSpec::k80_cluster();
        assert_eq!(k80.num_workers(), 16);
        let v100 = ClusterSpec::v100_cluster();
        assert_eq!(v100.num_workers(), 16);
        assert!(v100.gpu.encode_throughput() > k80.gpu.encode_throughput());
    }

    #[test]
    fn worker_bandwidth_shares_the_nic() {
        let c = ClusterSpec::k80_cluster();
        assert!((c.worker_bandwidth() - 56.0e9 / 8.0 / 4.0).abs() < 1.0);
    }

    #[test]
    fn comm_time_scales_with_bytes_and_bandwidth() {
        let c = ClusterSpec::v100_cluster();
        // Large payloads so per-message overhead is negligible.
        let t1 = c.comm_time(1e8, 1e8);
        let t2 = c.comm_time(2e8, 2e8);
        assert!(t2 > t1 * 1.8 && t2 < t1 * 2.2);
        let slow = c.with_bandwidth_gbps(1.0);
        assert!(slow.comm_time(1e8, 1e8) > t1 * 30.0);
    }

    #[test]
    fn full_duplex_charges_the_larger_direction() {
        let c = ClusterSpec::v100_cluster();
        let symmetric = c.comm_time(1e8, 1e8);
        let push_only = c.comm_time(1e8, 0.0);
        assert!(
            (symmetric - push_only).abs() < 1e-9,
            "pull rides the other direction"
        );
        // Compressing the push below the pull size stops helping.
        let compressed = c.comm_time(1e8 / 16.0, 1e8);
        assert!((compressed - symmetric).abs() < 1e-9);
    }

    #[test]
    fn single_worker_has_no_offnode_traffic() {
        let c = ClusterSpec::k80_cluster().with_single_gpu_nodes(1);
        let t = c.comm_time(1e9, 1e9);
        assert!(t < 1e-3, "only per-message overhead expected, got {t}");
    }

    #[test]
    fn convergence_config_single_gpu_nodes() {
        let c = ClusterSpec::k80_cluster().with_single_gpu_nodes(2);
        assert_eq!(c.num_workers(), 2);
        assert!((c.worker_bandwidth() - 7e9).abs() < 1.0);
    }

    #[test]
    fn ring_allreduce_is_bandwidth_optimal_for_large_vectors() {
        let c = ClusterSpec::k80_cluster().with_single_gpu_nodes(8);
        let n = 8.0;
        let bytes = 1e9;
        // Bandwidth term dominates: time → 2(N−1)/N · bytes / bw.
        let ideal = 2.0 * (n - 1.0) / n * bytes / c.worker_bandwidth();
        let t = c.ring_allreduce_time(bytes);
        assert!(t > ideal && t < ideal * 1.01, "t={t} ideal={ideal}");
        // The tree pays ~N/2× the root-NIC bytes at this size.
        assert!(c.tree_allreduce_time(bytes) > 3.0 * t);
    }

    #[test]
    fn tree_wins_small_vectors_ring_wins_large() {
        let c = ClusterSpec::k80_cluster().with_single_gpu_nodes(16);
        let cross = c.allreduce_crossover_bytes();
        assert!(cross > 0.0, "16 workers must have a crossover");
        assert!(
            c.tree_allreduce_time(cross / 10.0) < c.ring_allreduce_time(cross / 10.0),
            "below crossover the tree's log-depth latency wins"
        );
        assert!(
            c.ring_allreduce_time(cross * 10.0) < c.tree_allreduce_time(cross * 10.0),
            "above crossover the ring's bandwidth optimality wins"
        );
        // At the crossover itself the two are equal by construction.
        let (r, t) = (c.ring_allreduce_time(cross), c.tree_allreduce_time(cross));
        assert!((r - t).abs() < 1e-12 * r.max(t));
    }

    #[test]
    fn degenerate_allreduce_worlds() {
        let c = ClusterSpec::k80_cluster().with_single_gpu_nodes(1);
        assert_eq!(c.ring_allreduce_time(1e9), 0.0);
        assert_eq!(c.tree_allreduce_time(1e9), 0.0);
        let two = ClusterSpec::k80_cluster().with_single_gpu_nodes(2);
        // N=2: both topologies are a single exchange; ring never loses.
        assert_eq!(two.allreduce_crossover_bytes(), 0.0);
    }
}
