//! Per-layer discrete-event pipeline simulator.
//!
//! Models one (representative) worker with three serial resources:
//!
//! * **Compute** — FP layers in forward order, then BP layers in backward
//!   order, then (delayed algorithms) the local weight update.
//! * **Quant** — the 2-bit encode kernel, one layer at a time, in
//!   BP-completion order. Quantization *delays communication* but, for
//!   CD-SGD, not the next iteration's compute (§3.2.2).
//! * **Net** — layer-wise push→aggregate→pull, FIFO in BP-completion
//!   order (MXNet's WFBP): the first gradients on the wire belong to the
//!   *last* layers, while FP needs the *first* layer's weights — exactly
//!   why blocking algorithms overlap so poorly.
//!
//! Dependency rules:
//! * S-SGD / BIT-SGD: FP of iteration `i`, layer `l` waits for that
//!   layer's communication of iteration `i−1` (Fig. 1a/1c).
//! * OD-SGD / CD-SGD: FP of iteration `i` waits only for the local update
//!   of `i−1` — plus the communication of iteration `i−2`, the paper's
//!   "cannot start FP in i+2-th iteration" rule (§2.2, Fig. 1b).

use crate::cluster::ClusterSpec;
use crate::trace::{Resource, TraceLog};
use crate::zoo::ModelSpec;
use serde::Serialize;

/// Which distributed algorithm to simulate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum AlgoKind {
    /// Synchronous SGD: raw gradients, blocking.
    Ssgd,
    /// 2-bit quantization, blocking (MXNet `gc_type="2bit"`).
    BitSgd,
    /// Local-update mechanism, raw gradients (OD-SGD).
    OdSgd,
    /// CD-SGD with correction period `k`.
    CdSgd {
        /// k-step correction period.
        k: usize,
    },
}

impl AlgoKind {
    /// Display name matching the paper's figures.
    pub fn name(&self) -> String {
        match self {
            AlgoKind::Ssgd => "S-SGD".into(),
            AlgoKind::BitSgd => "BIT-SGD".into(),
            AlgoKind::OdSgd => "OD-SGD".into(),
            AlgoKind::CdSgd { k } => format!("CD-SGD(k={k})"),
        }
    }

    fn is_delayed(&self) -> bool {
        matches!(self, AlgoKind::OdSgd | AlgoKind::CdSgd { .. })
    }

    /// Does iteration `i` push compressed gradients?
    fn compresses(&self, i: usize) -> bool {
        match self {
            AlgoKind::Ssgd | AlgoKind::OdSgd => false,
            AlgoKind::BitSgd => true,
            AlgoKind::CdSgd { k } => !i.is_multiple_of(*k),
        }
    }
}

/// Result of a simulation run.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Steady-state average iteration time (seconds).
    pub avg_iter_time: f64,
    /// Completion time of each iteration (all communication drained).
    pub iteration_done: Vec<f64>,
    /// Full op trace.
    pub trace: TraceLog,
}

/// The simulator: a model on a cluster at a per-GPU batch size.
pub struct PipelineSim {
    fp: Vec<f64>,
    bp: Vec<f64>,
    comm_raw: Vec<f64>,
    comm_cmp: Vec<f64>,
    quant: Vec<f64>,
    local_update: f64,
}

impl PipelineSim {
    /// Precompute per-layer times.
    pub fn new(model: &ModelSpec, cluster: &ClusterSpec, batch: usize) -> Self {
        let times = model.layer_times(cluster.gpu, batch);
        let fp: Vec<f64> = times.iter().map(|t| t.0).collect();
        let bp: Vec<f64> = times.iter().map(|t| t.1).collect();
        let enc = cluster.gpu.encode_throughput();
        let mut comm_raw = Vec::new();
        let mut comm_cmp = Vec::new();
        let mut quant = Vec::new();
        for l in &model.layers {
            let p4 = l.params as f64 * 4.0;
            comm_raw.push(cluster.comm_time(p4, p4));
            // Compressed rounds compress both directions: the server
            // broadcasts the quantized aggregate (see CostInputs::derive).
            comm_cmp.push(cluster.comm_time(p4 / 16.0 + 4.0, p4 / 16.0 + 4.0));
            // Per-layer launch/setup overhead plus byte cost — small
            // layers still pay a visible fixed price (Fig. 5's per-layer
            // quantization bars on ResNet-20).
            quant.push(cluster.gpu.quant_launch_overhead() + p4 / enc);
        }
        // Local update reads the gradient and weights and writes weights.
        let total_bytes = model.param_bytes();
        let local_update = 3.0 * total_bytes / cluster.gpu.mem_bandwidth();
        Self {
            fp,
            bp,
            comm_raw,
            comm_cmp,
            quant,
            local_update,
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.fp.len()
    }

    /// Run `iters` iterations of `algo`; steady-state average excludes the
    /// first `warmup` iterations (default 2 inside [`Self::run`]).
    pub fn run(&self, algo: AlgoKind, iters: usize) -> SimResult {
        assert!(
            iters >= 4,
            "need a few iterations for a steady-state average"
        );
        let l_count = self.num_layers();
        let mut trace = TraceLog::new();
        let mut compute_free = 0.0f64;
        let mut quant_free = 0.0f64;
        let mut net_free = 0.0f64;
        // comm_done[i][l]
        let mut comm_done = vec![vec![0.0f64; l_count]; iters];
        let mut iteration_done = vec![0.0f64; iters];

        for i in 0..iters {
            // ---- FP ----
            let mut t = compute_free;
            #[allow(clippy::needless_range_loop)]
            for l in 0..l_count {
                let gate = if algo.is_delayed() {
                    if i >= 2 {
                        comm_done[i - 2][l]
                    } else {
                        0.0
                    }
                } else if i >= 1 {
                    comm_done[i - 1][l]
                } else {
                    0.0
                };
                t = t.max(gate);
                trace.record(Resource::Compute, "FP", i, l, t, t + self.fp[l]);
                t += self.fp[l];
            }
            // ---- BP ----
            // In blocking BIT-SGD, the 2-bit encode is an operator on the
            // GPU compute stream: MXNet's engine schedules the encode ops
            // after the (higher-priority) BP ops, so every layer's
            // communication waits for the full backward pass plus its
            // encode — which is why Fig. 5a shows BIT-SGD's communication
            // fully exposed (eq. 5's τ + δ + ψ). Delayed algorithms
            // instead encode on the separate quant resource.
            let inline_quant = algo.compresses(i) && !algo.is_delayed();
            let mut grad_ready = vec![0.0f64; l_count];
            for l in (0..l_count).rev() {
                trace.record(Resource::Compute, "BP", i, l, t, t + self.bp[l]);
                t += self.bp[l];
                grad_ready[l] = t;
            }
            if inline_quant {
                for l in (0..l_count).rev() {
                    trace.record(Resource::Compute, "quant", i, l, t, t + self.quant[l]);
                    t += self.quant[l];
                    grad_ready[l] = t;
                }
            }
            if !algo.is_delayed() {
                // Blocking algorithms (Fig. 1a/1c, eqs. 2 and 5): in
                // MXNet 1.4's PS mode the weight update runs on the server
                // and the worker's engine releases the push ops only once
                // the whole backward pass (plus encode) has retired, so
                // communication is serialized after computation —
                // T = τ (+δ) + comm, with no BP overlap.
                for g in grad_ready.iter_mut() {
                    *g = t;
                }
            }
            // ---- local update (delayed algorithms) ----
            if algo.is_delayed() {
                trace.record(
                    Resource::Compute,
                    "local_update",
                    i,
                    usize::MAX,
                    t,
                    t + self.local_update,
                );
                t += self.local_update;
            }
            compute_free = t;

            // ---- quantize + communicate, in BP-completion order ----
            let compress = algo.compresses(i);
            for l in (0..l_count).rev() {
                let mut ready = grad_ready[l];
                if compress && !inline_quant {
                    let qs = quant_free.max(ready);
                    trace.record(Resource::Quant, "quant", i, l, qs, qs + self.quant[l]);
                    quant_free = qs + self.quant[l];
                    ready = quant_free;
                }
                let dur = if compress {
                    self.comm_cmp[l]
                } else {
                    self.comm_raw[l]
                };
                let ns = net_free.max(ready);
                trace.record(Resource::Net, "comm", i, l, ns, ns + dur);
                net_free = ns + dur;
                comm_done[i][l] = net_free;
            }
            iteration_done[i] = comm_done[i][0].max(compute_free.min(comm_done[i][0]));
            iteration_done[i] = comm_done[i][0];
        }

        let warmup = 2usize;
        // For CD-SGD, average over whole k-periods to avoid phase bias.
        let span_end = iters - 1;
        let avg = (iteration_done[span_end] - iteration_done[warmup - 1])
            / (span_end - (warmup - 1)) as f64;
        SimResult {
            avg_iter_time: avg,
            iteration_done,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{ClusterSpec, GpuKind};
    use crate::cost::{CostInputs, CostModel};
    use crate::zoo::{self, LayerSpec, ModelSpec};

    /// A one-layer model lets us compare the simulator against the paper's
    /// closed-form equations exactly (no pipelining effects).
    fn single_layer_model(params: u64, thr: f64) -> ModelSpec {
        ModelSpec {
            name: "single".into(),
            layers: vec![LayerSpec {
                name: "all".into(),
                params,
                flops_fwd: 1e9,
            }],
            throughput: (thr, thr),
        }
    }

    fn iters_for(algo: AlgoKind) -> usize {
        match algo {
            AlgoKind::CdSgd { k } => 2 + 10 * k,
            _ => 40,
        }
    }

    #[test]
    fn single_layer_matches_cost_model() {
        let cluster = ClusterSpec::k80_cluster();
        // Comm-bound: big params, fast compute.
        let model = single_layer_model(50_000_000, 500.0);
        let sim = PipelineSim::new(&model, &cluster, 32);
        let inputs = CostInputs::derive(&model, &cluster, 32, 5);
        let cm = CostModel::new(inputs);
        let tol = 0.08;

        let ssgd = sim
            .run(AlgoKind::Ssgd, iters_for(AlgoKind::Ssgd))
            .avg_iter_time;
        assert!(
            (ssgd - cm.t_ssgd()).abs() / cm.t_ssgd() < tol,
            "{ssgd} vs {}",
            cm.t_ssgd()
        );

        let bit = sim
            .run(AlgoKind::BitSgd, iters_for(AlgoKind::BitSgd))
            .avg_iter_time;
        assert!(
            (bit - cm.t_bit()).abs() / cm.t_bit() < tol,
            "{bit} vs {}",
            cm.t_bit()
        );

        let od = sim
            .run(AlgoKind::OdSgd, iters_for(AlgoKind::OdSgd))
            .avg_iter_time;
        assert!(
            (od - cm.t_loc()).abs() / cm.t_loc() < tol,
            "{od} vs {}",
            cm.t_loc()
        );

        // For CD-SGD the event simulator is allowed to beat the closed
        // form: across iterations the encode of step i overlaps the
        // still-draining communication of step i−1, hiding up to δ per
        // compressed iteration that eq. 7 charges serially. So the sim
        // must land in [closed form − δ·(k−1)/k, closed form·(1+tol)].
        let k = 5usize;
        let cd = sim
            .run(AlgoKind::CdSgd { k }, iters_for(AlgoKind::CdSgd { k }))
            .avg_iter_time;
        let hideable = inputs.delta * (k as f64 - 1.0) / k as f64;
        assert!(
            cd <= cm.t_cd_avg() * (1.0 + tol),
            "{cd} vs {}",
            cm.t_cd_avg()
        );
        assert!(
            cd >= cm.t_cd_avg() - hideable - tol * cm.t_cd_avg(),
            "{cd} vs {}",
            cm.t_cd_avg()
        );
    }

    #[test]
    fn compute_bound_regime_all_algorithms_converge_to_tau() {
        let cluster = ClusterSpec::k80_cluster();
        // Tiny params, slow compute: τ dominates.
        let model = single_layer_model(100_000, 20.0);
        let sim = PipelineSim::new(&model, &cluster, 32);
        let tau = model.tau(GpuKind::K80, 32);
        let od = sim.run(AlgoKind::OdSgd, 40).avg_iter_time;
        let cd = sim.run(AlgoKind::CdSgd { k: 5 }, 52).avg_iter_time;
        assert!((od - tau).abs() / tau < 0.05);
        assert!((cd - tau).abs() / tau < 0.05);
        // BIT-SGD still pays its exposed δ+ψ on top of τ.
        let bit = sim.run(AlgoKind::BitSgd, 40).avg_iter_time;
        assert!(bit > tau);
    }

    #[test]
    fn cd_beats_bit_in_comm_bound_regime() {
        let cluster = ClusterSpec::v100_cluster();
        let model = zoo::vgg16();
        let sim = PipelineSim::new(&model, &cluster, 32);
        let bit = sim.run(AlgoKind::BitSgd, 40).avg_iter_time;
        let cd = sim.run(AlgoKind::CdSgd { k: 5 }, 52).avg_iter_time;
        let ssgd = sim.run(AlgoKind::Ssgd, 40).avg_iter_time;
        assert!(cd < bit, "CD {cd} should beat BIT {bit}");
        assert!(cd < ssgd, "CD {cd} should beat S-SGD {ssgd}");
    }

    #[test]
    fn alexnet_v100_cd_beats_both_baselines() {
        // AlexNet on V100 is the most communication-heavy cell of Fig. 10
        // (61M params, tiny τ). The paper's claim: CD-SGD beats BIT-SGD by
        // 3–45% (hiding δ and overlapping ψ) and clearly beats S-SGD, and
        // a larger k improves speed further (§3.3 ①).
        let cluster = ClusterSpec::v100_cluster();
        let model = zoo::alexnet();
        let sim = PipelineSim::new(&model, &cluster, 32);
        let bit = sim.run(AlgoKind::BitSgd, 40).avg_iter_time;
        let cd5 = sim.run(AlgoKind::CdSgd { k: 5 }, 52).avg_iter_time;
        let cd20 = sim.run(AlgoKind::CdSgd { k: 20 }, 102).avg_iter_time;
        let ssgd = sim.run(AlgoKind::Ssgd, 40).avg_iter_time;
        // At k=5 AlexNet's enormous correction round (61M raw params)
        // makes this the paper's "3%" end of the 3–45% range — a
        // near-tie; we allow ±10% either way.
        assert!(
            cd5 <= bit * 1.1,
            "CD(k=5) {cd5} should be within 10% of BIT {bit}"
        );
        assert!(
            ssgd / cd5 > 1.3,
            "CD {cd5} should clearly beat S-SGD {ssgd}"
        );
        assert!(
            cd20 < bit,
            "CD(k=20) {cd20} must clearly beat BIT {bit} (paper §3.3 ①)"
        );
    }

    #[test]
    fn delayed_fp_starts_before_previous_comm_ends() {
        // The Fig. 5 observation: in CD-SGD the (i+1)-th FP can begin while
        // the i-th communication is still in flight; in BIT-SGD it cannot.
        let cluster = ClusterSpec::v100_cluster();
        let model = zoo::alexnet();
        let sim = PipelineSim::new(&model, &cluster, 32);

        let check = |algo: AlgoKind| -> (f64, f64) {
            let res = sim.run(algo, 12);
            // FP start of iteration 6, layer 0 vs comm end of iteration 5.
            let fp_start = res
                .trace
                .events()
                .iter()
                .find(|e| e.op == "FP" && e.iter == 6 && e.layer == 0)
                .unwrap()
                .start;
            let comm_end = res.iteration_done[5];
            (fp_start, comm_end)
        };

        let (fp, comm) = check(AlgoKind::CdSgd { k: 4 });
        assert!(
            fp < comm,
            "CD-SGD FP {fp} should start before comm {comm} ends"
        );
        let (fp, comm) = check(AlgoKind::BitSgd);
        assert!(
            fp >= comm - 1e-9,
            "BIT-SGD FP {fp} must wait for comm {comm}"
        );
    }

    #[test]
    fn traces_have_no_resource_overlap() {
        let cluster = ClusterSpec::k80_cluster();
        let model = zoo::resnet20();
        let sim = PipelineSim::new(&model, &cluster, 32);
        for algo in [
            AlgoKind::Ssgd,
            AlgoKind::BitSgd,
            AlgoKind::OdSgd,
            AlgoKind::CdSgd { k: 2 },
        ] {
            let res = sim.run(algo, 8);
            assert!(
                res.trace.find_overlap().is_none(),
                "overlap in {}",
                algo.name()
            );
        }
    }

    #[test]
    fn iteration_done_is_monotonic() {
        let cluster = ClusterSpec::v100_cluster();
        let model = zoo::vgg16();
        let sim = PipelineSim::new(&model, &cluster, 32);
        for algo in [AlgoKind::Ssgd, AlgoKind::CdSgd { k: 5 }] {
            let res = sim.run(algo, 12);
            for w in res.iteration_done.windows(2) {
                assert!(w[1] > w[0]);
            }
        }
    }

    #[test]
    fn larger_batch_weakens_cd_advantage() {
        // Paper §4.4: "as the batch size becomes bigger ... the
        // acceleration effect of CD-SGD is weaker".
        let cluster = ClusterSpec::v100_cluster();
        let model = zoo::vgg16();
        let speedup = |batch: usize| {
            let sim = PipelineSim::new(&model, &cluster, batch);
            let ssgd = sim.run(AlgoKind::Ssgd, 40).avg_iter_time;
            let cd = sim.run(AlgoKind::CdSgd { k: 5 }, 52).avg_iter_time;
            ssgd / cd - 1.0
        };
        assert!(speedup(32) > speedup(128));
    }
}
