//! # cdsgd-simtime
//!
//! The cluster-timing substrate (DESIGN.md §2): everything needed to
//! reproduce the paper's *speed* results without the original 16-GPU
//! K80/V100 clusters.
//!
//! * [`cluster`] — hardware specs: GPU kinds with per-model empirical
//!   throughput, NIC bandwidth/latency, node topology.
//! * [`zoo`] — per-layer parameter/FLOP breakdowns of the evaluated
//!   models (AlexNet, VGG-16, Inception-bn, ResNet-50, ResNet-20,
//!   LeNet-5).
//! * [`cost`] — the paper's closed-form time-cost model (eqs. 2, 4–9)
//!   implemented exactly as printed.
//! * [`pipeline`] — a per-layer discrete-event simulator with three
//!   resources (compute, quantization, network) that reproduces MXNet's
//!   layer-wise WFBP scheduling, the quantization-delays-communication
//!   effect, and the local-update overlap. This is the oracle behind
//!   Fig. 5 and Fig. 10.
//! * [`trace`] — op-interval traces and Chrome `trace_event` JSON export
//!   (the paper's profiler + trace-viewer methodology).

pub mod cluster;
pub mod cost;
pub mod pipeline;
pub mod straggler;
pub mod trace;
pub mod zoo;

pub use cluster::{ClusterSpec, GpuKind};
pub use cost::{CostInputs, CostModel};
pub use pipeline::{AlgoKind, PipelineSim, SimResult};
pub use straggler::StragglerSim;
pub use trace::{TraceEvent, TraceLog};
pub use zoo::{LayerSpec, ModelSpec};
