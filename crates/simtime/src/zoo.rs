//! The model zoo: per-layer parameter and FLOP breakdowns of the models
//! the paper evaluates, plus empirical per-GPU throughput.
//!
//! Parameter counts are the published architecture totals; per-layer
//! splits are coarse (layer groups) but preserve the property that drives
//! WFBP scheduling: *where* the bytes sit relative to the backward pass
//! (e.g. AlexNet/VGG carry ~90% of their bytes in the last FC layers,
//! whose gradients are ready first — maximally overlappable — while
//! ResNet spreads bytes evenly).

use crate::cluster::GpuKind;
use serde::{Deserialize, Serialize};

/// One layer (or layer group) of a model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayerSpec {
    /// Display name.
    pub name: String,
    /// Learnable parameter count.
    pub params: u64,
    /// Forward FLOPs per sample.
    pub flops_fwd: f64,
}

/// A model as the timing simulator sees it.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name as used in the paper's figures.
    pub name: String,
    /// Layers in forward order.
    pub layers: Vec<LayerSpec>,
    /// Empirical per-GPU training throughput (images/s, fp32, batch 32):
    /// `(K80, V100)`.
    pub throughput: (f64, f64),
}

impl ModelSpec {
    /// Total parameter count.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Total parameter bytes (f32).
    pub fn param_bytes(&self) -> f64 {
        self.total_params() as f64 * 4.0
    }

    /// Total forward FLOPs per sample.
    pub fn total_flops_fwd(&self) -> f64 {
        self.layers.iter().map(|l| l.flops_fwd).sum()
    }

    /// Per-GPU training throughput on `gpu` (images/s).
    pub fn throughput_on(&self, gpu: GpuKind) -> f64 {
        match gpu {
            GpuKind::K80 => self.throughput.0,
            GpuKind::V100 => self.throughput.1,
        }
    }

    /// Computation time τ of one iteration (FP+BP) at `batch` per GPU.
    pub fn tau(&self, gpu: GpuKind, batch: usize) -> f64 {
        batch as f64 / self.throughput_on(gpu)
    }

    /// Split τ across layers: per-layer `(fp_time, bp_time)` proportional
    /// to FLOP share, with BP costing twice FP (the standard 1:2 ratio).
    pub fn layer_times(&self, gpu: GpuKind, batch: usize) -> Vec<(f64, f64)> {
        let tau = self.tau(gpu, batch);
        let total = self.total_flops_fwd();
        self.layers
            .iter()
            .map(|l| {
                let share = l.flops_fwd / total;
                (tau * share / 3.0, tau * share * 2.0 / 3.0)
            })
            .collect()
    }
}

fn layer(name: &str, params: u64, mflops_fwd: f64) -> LayerSpec {
    LayerSpec {
        name: name.to_string(),
        params,
        flops_fwd: mflops_fwd * 1e6,
    }
}

/// LeNet-5 (the paper's MNIST workload): 61.7K params.
pub fn lenet5() -> ModelSpec {
    ModelSpec {
        name: "LeNet-5".into(),
        layers: vec![
            layer("conv1", 156, 0.3),
            layer("conv2", 2_416, 0.8),
            layer("fc1", 48_120, 0.10),
            layer("fc2", 10_164, 0.02),
            layer("fc3", 850, 0.002),
        ],
        throughput: (9_000.0, 50_000.0),
    }
}

/// ResNet-20 for CIFAR-10: ~0.27M params, ~41 MFLOPs forward.
pub fn resnet20() -> ModelSpec {
    let mut layers = vec![layer("stem", 448, 1.8)];
    for b in 0..3 {
        layers.push(layer(&format!("stage1.block{b}"), 4_672, 4.4));
    }
    layers.push(layer("stage2.block0", 13_952, 4.4));
    for b in 1..3 {
        layers.push(layer(&format!("stage2.block{b}"), 18_560, 4.4));
    }
    layers.push(layer("stage3.block0", 55_552, 4.4));
    for b in 1..3 {
        layers.push(layer(&format!("stage3.block{b}"), 73_984, 4.4));
    }
    layers.push(layer("fc", 650, 0.002));
    ModelSpec {
        name: "ResNet-20".into(),
        layers,
        throughput: (1_000.0, 7_500.0),
    }
}

/// AlexNet: ~61M params (fc6/fc7 dominate), ~0.72 GFLOPs forward.
pub fn alexnet() -> ModelSpec {
    ModelSpec {
        name: "AlexNet".into(),
        layers: vec![
            layer("conv1", 34_944, 105.0),
            layer("conv2", 307_456, 224.0),
            layer("conv3", 885_120, 150.0),
            layer("conv4", 663_936, 112.0),
            layer("conv5", 442_624, 75.0),
            layer("fc6", 37_752_832, 37.8),
            layer("fc7", 16_781_312, 16.8),
            layer("fc8", 4_097_000, 4.1),
        ],
        throughput: (380.0, 2_900.0),
    }
}

/// VGG-16: ~138M params (fc layers ≈ 124M), ~15.5 GFLOPs forward.
pub fn vgg16() -> ModelSpec {
    ModelSpec {
        name: "VGG-16".into(),
        layers: vec![
            layer("conv1_1", 1_792, 87.0),
            layer("conv1_2", 36_928, 1_850.0),
            layer("conv2_1", 73_856, 925.0),
            layer("conv2_2", 147_584, 1_850.0),
            layer("conv3_1", 295_168, 925.0),
            layer("conv3_2", 590_080, 1_850.0),
            layer("conv3_3", 590_080, 1_850.0),
            layer("conv4_1", 1_180_160, 925.0),
            layer("conv4_2", 2_359_808, 1_850.0),
            layer("conv4_3", 2_359_808, 1_850.0),
            layer("conv5_1", 2_359_808, 462.0),
            layer("conv5_2", 2_359_808, 462.0),
            layer("conv5_3", 2_359_808, 462.0),
            layer("fc6", 102_764_544, 102.8),
            layer("fc7", 16_781_312, 16.8),
            layer("fc8", 4_097_000, 4.1),
        ],
        throughput: (31.0, 218.0),
    }
}

/// Inception-bn (BN-Inception): ~11.3M params, ~2.0 GFLOPs forward —
/// "many computation layers which leads to huge computation cost".
pub fn inception_bn() -> ModelSpec {
    let mut layers = vec![layer("stem", 250_000, 430.0)];
    // Nine inception blocks (3a..5b), params growing with depth.
    let blocks: [(u64, f64); 9] = [
        (260_000, 130.0),
        (390_000, 160.0),
        (560_000, 180.0),
        (780_000, 190.0),
        (900_000, 190.0),
        (1_200_000, 180.0),
        (1_500_000, 170.0),
        (2_000_000, 180.0),
        (2_400_000, 180.0),
    ];
    for (i, (p, f)) in blocks.iter().enumerate() {
        layers.push(layer(&format!("inception{}", i + 1), *p, *f));
    }
    layers.push(layer("fc", 1_025_000, 1.0));
    ModelSpec {
        name: "Inception-bn".into(),
        layers,
        throughput: (52.0, 400.0),
    }
}

/// ResNet-50: ~25.6M params, ~3.9 GFLOPs forward.
pub fn resnet50() -> ModelSpec {
    let mut layers = vec![layer("stem", 9_408, 120.0)];
    // Stage param totals ≈ 0.75M / 3.1M / 10.4M / 9.25M over 3/4/6/3
    // bottleneck blocks; FLOPs roughly even per stage.
    let stages: [(usize, u64, f64); 4] = [
        (3, 250_000, 250.0),
        (4, 775_000, 230.0),
        (6, 1_733_000, 195.0),
        (3, 3_083_000, 290.0),
    ];
    for (s, (blocks, p, f)) in stages.iter().enumerate() {
        for b in 0..*blocks {
            layers.push(layer(&format!("stage{}.block{b}", s + 1), *p, *f));
        }
    }
    layers.push(layer("fc", 2_049_000, 2.0));
    ModelSpec {
        name: "ResNet-50".into(),
        layers,
        throughput: (48.0, 350.0),
    }
}

/// All Fig. 10 models in the paper's presentation order.
pub fn fig10_models() -> Vec<ModelSpec> {
    vec![resnet50(), alexnet(), vgg16(), inception_bn()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_parameter_totals() {
        assert_eq!(lenet5().total_params(), 61_706);
        let r20 = resnet20().total_params();
        assert!((260_000..290_000).contains(&r20), "resnet20 {r20}");
        let an = alexnet().total_params();
        assert!((60_000_000..62_000_000).contains(&an), "alexnet {an}");
        let vg = vgg16().total_params();
        assert!((137_000_000..140_000_000).contains(&vg), "vgg {vg}");
        let ic = inception_bn().total_params();
        assert!((10_000_000..13_000_000).contains(&ic), "inception {ic}");
        let r50 = resnet50().total_params();
        assert!((24_000_000..27_000_000).contains(&r50), "resnet50 {r50}");
    }

    #[test]
    fn flop_totals_roughly_published() {
        assert!((alexnet().total_flops_fwd() - 0.72e9).abs() < 0.1e9);
        assert!((vgg16().total_flops_fwd() - 15.5e9).abs() < 1.0e9);
        assert!((resnet50().total_flops_fwd() - 3.9e9).abs() < 0.5e9);
        assert!((inception_bn().total_flops_fwd() - 2.0e9).abs() < 0.3e9);
    }

    #[test]
    fn tau_scales_linearly_with_batch() {
        let m = resnet50();
        let t32 = m.tau(GpuKind::K80, 32);
        let t64 = m.tau(GpuKind::K80, 64);
        assert!((t64 / t32 - 2.0).abs() < 1e-9);
        assert!(m.tau(GpuKind::V100, 32) < t32);
    }

    #[test]
    fn layer_times_sum_to_tau() {
        let m = vgg16();
        let times = m.layer_times(GpuKind::V100, 32);
        let sum: f64 = times.iter().map(|(f, b)| f + b).sum();
        assert!((sum - m.tau(GpuKind::V100, 32)).abs() < 1e-9);
        // BP twice FP per layer.
        for (f, b) in times {
            assert!((b - 2.0 * f).abs() < 1e-12);
        }
    }

    #[test]
    fn fc_heavy_models_have_late_byte_mass() {
        // In AlexNet/VGG > 85% of bytes sit in the last three layers,
        // whose gradients appear first in backward order.
        for m in [alexnet(), vgg16()] {
            let total = m.total_params() as f64;
            let last3: u64 = m.layers.iter().rev().take(3).map(|l| l.params).sum();
            assert!(last3 as f64 / total > 0.85, "{}", m.name);
        }
        // ResNet-50 spreads bytes: last three layers hold < 50%.
        let m = resnet50();
        let last3: u64 = m.layers.iter().rev().take(3).map(|l| l.params).sum();
        assert!((last3 as f64 / m.total_params() as f64) < 0.5);
    }
}
