//! The paper's closed-form time-cost model, §3.3 (eqs. 2, 4–9),
//! implemented exactly as printed.
//!
//! All quantities are per-iteration times in seconds:
//!
//! * `tau`   (τ) — computation time (FP+BP),
//! * `phi`   (φ) — uncompressed communication time,
//! * `psi`   (ψ) — compressed communication time,
//! * `delta` (δ) — extra time brought by compression.

use crate::cluster::ClusterSpec;
use crate::zoo::ModelSpec;
use serde::{Deserialize, Serialize};

/// The four scalars of the paper's model plus the k-step period.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CostInputs {
    /// τ — computation time per iteration.
    pub tau: f64,
    /// φ — uncompressed communication time per iteration.
    pub phi: f64,
    /// ψ — compressed communication time per iteration.
    pub psi: f64,
    /// δ — extra compression (encode) time per iteration.
    pub delta: f64,
    /// k — CD-SGD's correction period (k−1 compressed iterations then one
    /// full-precision one).
    pub k: usize,
}

impl CostInputs {
    /// Derive the scalars for a model on a cluster at a per-GPU batch
    /// size, with 2-bit compression (wire = params/16 + header).
    ///
    /// Both directions are compressed: the server broadcasts the
    /// *quantized aggregated gradient* rather than raw weights, and each
    /// worker applies the identical decoded aggregate — mathematically
    /// equivalent to pulling the eq.-10 weights, and the design that makes
    /// ψ ≪ φ as the paper's measurements require (see DESIGN.md §2).
    pub fn derive(model: &ModelSpec, cluster: &ClusterSpec, batch: usize, k: usize) -> Self {
        let p = model.param_bytes();
        let wire_2bit = p / 16.0 + 4.0 * model.layers.len() as f64;
        Self {
            tau: model.tau(cluster.gpu, batch),
            phi: cluster.comm_time(p, p),
            psi: cluster.comm_time(wire_2bit, wire_2bit),
            delta: model.layers.len() as f64 * cluster.gpu.quant_launch_overhead()
                + p / cluster.gpu.encode_throughput(),
            k: k.max(1),
        }
    }
}

/// Evaluator for the paper's equations.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    inputs: CostInputs,
}

impl CostModel {
    /// Build from explicit scalars.
    pub fn new(inputs: CostInputs) -> Self {
        assert!(inputs.k >= 1, "k must be >= 1");
        Self { inputs }
    }

    /// The input scalars.
    pub fn inputs(&self) -> &CostInputs {
        &self.inputs
    }

    /// Eq. 2: `T_ssgd = τ + φ`.
    pub fn t_ssgd(&self) -> f64 {
        self.inputs.tau + self.inputs.phi
    }

    /// Eq. 4: `T_loc = max(τ, φ)` (local update mechanism fully overlaps
    /// the smaller of the two).
    pub fn t_loc(&self) -> f64 {
        self.inputs.tau.max(self.inputs.phi)
    }

    /// Eq. 5: `T_bit = τ + δ + ψ`.
    pub fn t_bit(&self) -> f64 {
        self.inputs.tau + self.inputs.delta + self.inputs.psi
    }

    /// Eq. 6: CD-SGD's communication time in iteration `i`
    /// (`δ + ψ` in compression iterations, `φ` in correction iterations).
    pub fn phi_cd(&self, i: usize) -> f64 {
        if !i.is_multiple_of(self.inputs.k) {
            self.inputs.delta + self.inputs.psi
        } else {
            self.inputs.phi
        }
    }

    /// Eq. 7: CD-SGD's iteration time in iteration `i`.
    pub fn t_cd_iter(&self, i: usize) -> f64 {
        let phi_cd = self.phi_cd(i);
        if self.inputs.tau > phi_cd {
            self.inputs.tau
        } else {
            phi_cd
        }
    }

    /// Average CD-SGD iteration time over one k-period:
    /// `((k−1)·max(τ, δ+ψ) + max(τ, φ)) / k`. When communication is the
    /// bottleneck this reduces to the paper's stated limit
    /// `((k−1)(δ+ψ) + φ)/k` (§3.3 ②).
    pub fn t_cd_avg(&self) -> f64 {
        let k = self.inputs.k as f64;
        ((k - 1.0) * self.t_cd_iter(1) + self.t_cd_iter(0)) / k
    }

    /// Eq. 8: per-iteration saving vs. the local-update method,
    /// `T_s^loc = T_loc − T_cd(i)`.
    pub fn saving_vs_loc(&self, i: usize) -> f64 {
        self.t_loc() - self.t_cd_iter(i)
    }

    /// Eq. 9: per-iteration saving vs. BIT-SGD,
    /// `T_s^bit = T_bit − T_cd(i)`.
    pub fn saving_vs_bit(&self, i: usize) -> f64 {
        self.t_bit() - self.t_cd_iter(i)
    }

    /// Speedup of CD-SGD (average) over S-SGD — the Fig. 10 metric,
    /// reported as `T_ssgd / T_cd − 1` (0 means parity).
    pub fn speedup_vs_ssgd(&self) -> f64 {
        self.t_ssgd() / self.t_cd_avg() - 1.0
    }

    /// Average-iteration speedup of CD-SGD over BIT-SGD.
    pub fn speedup_vs_bit(&self) -> f64 {
        self.t_bit() / self.t_cd_avg() - 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(tau: f64, phi: f64, psi: f64, delta: f64, k: usize) -> CostModel {
        CostModel::new(CostInputs {
            tau,
            phi,
            psi,
            delta,
            k,
        })
    }

    #[test]
    fn compute_bound_regime_eq7_case1() {
        // τ > φ^cd in every iteration: T_cd == τ (§3.3: "when computation
        // cost is the bottleneck, the acceleration effect is not obvious").
        let m = model(1.0, 0.5, 0.05, 0.1, 5);
        for i in 0..10 {
            assert_eq!(m.t_cd_iter(i), 1.0);
        }
        assert_eq!(m.t_cd_avg(), 1.0);
        // Saving vs the local method is 0 (eq. 8 case 1).
        assert_eq!(m.saving_vs_loc(1), 0.0);
        // Saving vs BIT-SGD equals its exposed extra cost δ+ψ (eq. 9 case 1).
        assert!((m.saving_vs_bit(1) - 0.15).abs() < 1e-12);
    }

    #[test]
    fn comm_bound_regime_matches_stated_average() {
        // τ < δ+ψ < φ: the paper's stated average ((k−1)(δ+ψ)+φ)/k.
        let m = model(0.1, 1.0, 0.2, 0.05, 4);
        let expect = (3.0 * 0.25 + 1.0) / 4.0;
        assert!((m.t_cd_avg() - expect).abs() < 1e-12);
        // Eq. 8 case 3: saving vs local = φ − δ − ψ in compression iters.
        assert!((m.saving_vs_loc(1) - (1.0 - 0.25)).abs() < 1e-12);
        // Eq. 8 case 4: zero saving in correction iters.
        assert_eq!(m.saving_vs_loc(0), 0.0);
    }

    #[test]
    fn middle_regime_eq8_case2() {
        // δ+ψ < τ < φ: T_cd = τ in compression iters; saving vs local φ−τ.
        let m = model(0.5, 1.0, 0.1, 0.1, 2);
        assert_eq!(m.t_cd_iter(1), 0.5);
        assert!((m.saving_vs_loc(1) - 0.5).abs() < 1e-12);
        // eq. 9 case 2: saving vs BIT = τ ... T_bit − T_cd = (τ+δ+ψ) − τ = δ+ψ
        // when compute-bound *within* the compressed iteration; the paper's
        // case analysis labels this by which term survives.
        assert!((m.saving_vs_bit(1) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn correction_iterations_can_cost_more_than_bit() {
        // Eq. 9 case 3 can be negative: τ + δ + ψ − φ < 0 when φ is huge.
        let m = model(0.1, 10.0, 0.2, 0.05, 5);
        assert!(
            m.saving_vs_bit(0) < 0.0,
            "correction step should be slower than BIT"
        );
        assert!(m.saving_vs_bit(1) > 0.0);
    }

    #[test]
    fn ssgd_always_slowest_in_comm_bound_regime() {
        let m = model(0.1, 1.0, 0.2, 0.05, 5);
        assert!(m.t_ssgd() > m.t_loc());
        assert!(m.t_loc() >= m.t_cd_avg());
        assert!(m.speedup_vs_ssgd() > 0.0);
    }

    #[test]
    fn k_controls_the_cd_vs_bit_crossover() {
        // With φ ≫ ψ the correction step is expensive; the paper (§3.3 ①)
        // says a larger k "to maintain more iterations in compression
        // stage is necessary for performance improvement". At small k the
        // average correction cost can make CD-SGD *slower* than BIT-SGD
        // (eq. 9 case 3 negative), at large k it wins.
        let small_k = model(0.1, 1.0, 0.2, 0.05, 2);
        assert!(small_k.t_cd_avg() > small_k.t_bit());
        let big_k = model(0.1, 1.0, 0.2, 0.05, 20);
        assert!(big_k.t_cd_avg() < big_k.t_bit());
        assert!(big_k.speedup_vs_bit() > 0.0);
    }

    #[test]
    fn k_one_means_no_compression_ever() {
        // i % 1 == 0 for all i: every iteration is a correction step,
        // so CD-SGD degenerates to the local-update method.
        let m = model(0.1, 1.0, 0.2, 0.05, 1);
        for i in 0..5 {
            assert_eq!(m.t_cd_iter(i), m.t_loc());
        }
    }

    #[test]
    fn large_k_approaches_pure_compressed_rate() {
        let m = model(0.1, 1.0, 0.2, 0.05, 1000);
        assert!((m.t_cd_avg() - 0.25).abs() < 2e-3);
    }

    #[test]
    fn derive_produces_sane_scalars() {
        use crate::cluster::ClusterSpec;
        use crate::zoo;
        let inputs = CostInputs::derive(&zoo::vgg16(), &ClusterSpec::k80_cluster(), 32, 5);
        assert!(inputs.tau > 0.0 && inputs.phi > 0.0);
        // ψ < φ (compression shrinks push traffic), δ > 0.
        assert!(inputs.psi < inputs.phi);
        assert!(inputs.delta > 0.0);
        // VGG pushes ~0.55 GB both ways; sanity-scale check (sub-second).
        assert!(inputs.phi < 2.0, "phi {}", inputs.phi);
    }
}
