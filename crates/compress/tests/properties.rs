//! Property-based tests for the compression codecs: error-feedback mass
//! conservation, ternary output domains, and packing round-trips hold for
//! arbitrary gradient streams.

use cdsgd_compress::{
    decompress, decompress_add, pack_1bit, pack_2bit, unpack_1bit, unpack_2bit, AdaptiveTwoBit,
    BufferPool, Compressed, GradientCompressor, NoCompression, OneBitQuantizer, QsgdQuantizer,
    TernGradQuantizer, TopKSparsifier, TwoBitQuantizer,
};
use proptest::prelude::*;

fn grads(len: usize, rounds: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    prop::collection::vec(prop::collection::vec(-2.0f32..2.0, len..=len), 1..=rounds)
}

fn decode(c: &Compressed) -> Vec<f32> {
    let mut out = vec![0.0; c.len()];
    decompress(c, &mut out);
    out
}

proptest! {
    #[test]
    fn pack2_round_trip(syms in prop::collection::vec(0u8..4, 0..200)) {
        prop_assert_eq!(unpack_2bit(&pack_2bit(&syms), syms.len()), syms);
    }

    #[test]
    fn pack1_round_trip(bits in prop::collection::vec(any::<bool>(), 0..200)) {
        prop_assert_eq!(unpack_1bit(&pack_1bit(&bits), bits.len()), bits);
    }

    #[test]
    fn two_bit_outputs_in_ternary_domain(g in prop::collection::vec(-5.0f32..5.0, 1..64), thr in 0.1f32..2.0) {
        let mut q = TwoBitQuantizer::new(thr);
        for v in decode(&q.compress(0, &g)) {
            prop_assert!(v == 0.0 || (v - thr).abs() < 1e-6 || (v + thr).abs() < 1e-6);
        }
    }

    #[test]
    fn two_bit_mass_conservation(stream in grads(8, 12), thr in 0.2f32..1.0) {
        // sum of decoded transmissions + final residual == sum of gradients,
        // elementwise, over any gradient stream.
        let mut q = TwoBitQuantizer::new(thr);
        let n = 8;
        let mut sent = vec![0.0f32; n];
        let mut total = vec![0.0f32; n];
        for g in &stream {
            for (t, &x) in total.iter_mut().zip(g) { *t += x; }
            for (s, d) in sent.iter_mut().zip(decode(&q.compress(0, g))) { *s += d; }
        }
        let res = q.residuals().get(0).unwrap();
        for i in 0..n {
            prop_assert!((sent[i] + res[i] - total[i]).abs() < 1e-3,
                "slot {}: sent {} + residual {} != total {}", i, sent[i], res[i], total[i]);
        }
    }

    #[test]
    fn two_bit_step_semantics(stream in grads(4, 20), thr in 0.2f32..1.0) {
        // Per-step contract of the MXNet scheme: exactly one quantum of
        // ±thr is removed when |corrected| >= thr (so the residual shrinks
        // by thr toward zero), and the full corrected value is retained
        // when |corrected| < thr. Note the residual is NOT bounded by thr
        // in general — a stream of gradients larger than thr accumulates
        // faster than one quantum/step drains; that unbounded delay is the
        // accuracy problem CD-SGD's k-step correction addresses.
        let mut q = TwoBitQuantizer::new(thr);
        let n = 4;
        let mut prev_res = vec![0.0f32; n];
        for g in &stream {
            let corrected: Vec<f32> = g.iter().zip(&prev_res).map(|(&a, &b)| a + b).collect();
            q.compress(0, g);
            let res = q.residuals().get(0).unwrap().to_vec();
            for i in 0..n {
                let x = corrected[i];
                if x >= thr {
                    prop_assert!((res[i] - (x - thr)).abs() < 1e-4);
                } else if x <= -thr {
                    prop_assert!((res[i] - (x + thr)).abs() < 1e-4);
                } else {
                    prop_assert!((res[i] - x).abs() < 1e-4);
                    prop_assert!(res[i].abs() < thr + 1e-4);
                }
            }
            prev_res = res;
        }
    }

    #[test]
    fn one_bit_mass_conservation(stream in grads(6, 10)) {
        let mut q = OneBitQuantizer::new();
        let n = 6;
        let mut sent = vec![0.0f32; n];
        let mut total = vec![0.0f32; n];
        for g in &stream {
            for (t, &x) in total.iter_mut().zip(g) { *t += x; }
            for (s, d) in sent.iter_mut().zip(decode(&q.compress(0, g))) { *s += d; }
        }
        let res = q.residuals().get(0).unwrap();
        for i in 0..n {
            prop_assert!((sent[i] + res[i] - total[i]).abs() < 1e-2);
        }
    }

    #[test]
    fn topk_mass_conservation(stream in grads(10, 10), ratio in 0.1f64..1.0) {
        let mut s = TopKSparsifier::new(ratio);
        let n = 10;
        let mut sent = vec![0.0f32; n];
        let mut total = vec![0.0f32; n];
        for g in &stream {
            for (t, &x) in total.iter_mut().zip(g) { *t += x; }
            for (sv, d) in sent.iter_mut().zip(decode(&s.compress(0, g))) { *sv += d; }
        }
        let res = s.residuals().get(0).unwrap();
        for i in 0..n {
            prop_assert!((sent[i] + res[i] - total[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn topk_sends_exactly_k(g in prop::collection::vec(-2.0f32..2.0, 1..64), ratio in 0.05f64..1.0) {
        let mut s = TopKSparsifier::new(ratio);
        let k = s.k_for(g.len());
        if let Compressed::TopK { indices, values, .. } = s.compress(0, &g) {
            prop_assert_eq!(indices.len(), k);
            prop_assert_eq!(values.len(), k);
            // Indices strictly increasing (deterministic wire order).
            for w in indices.windows(2) {
                prop_assert!(w[0] < w[1]);
            }
        } else {
            prop_assert!(false, "wrong variant");
        }
    }

    #[test]
    fn terngrad_domain(g in prop::collection::vec(-3.0f32..3.0, 1..64), seed in 0u64..100) {
        let mut q = TernGradQuantizer::new(seed);
        let s_max = g.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        for v in decode(&q.compress(0, &g)) {
            prop_assert!(v == 0.0 || (v.abs() - s_max).abs() < 1e-5);
        }
    }

    #[test]
    fn qsgd_decode_bounded_by_norm(g in prop::collection::vec(-3.0f32..3.0, 1..64), seed in 0u64..100) {
        let mut q = QsgdQuantizer::new(4, seed);
        let norm = g.iter().map(|x| x * x).sum::<f32>().sqrt();
        for v in decode(&q.compress(0, &g)) {
            prop_assert!(v.abs() <= norm * (1.0 + 1e-5) + 1e-6);
        }
    }

    #[test]
    fn compress_into_is_bit_identical_and_recycle_safe(stream in grads(12, 8)) {
        // For every codec: the pooled path (compress_into, payloads
        // recycled between rounds through a pre-dirtied pool) produces
        // payloads identical to the allocating path, and decompress_add
        // over those recycled-buffer payloads matches decompress-then-add
        // bit for bit. This is the "not one ULP" contract the server's
        // buffer reuse relies on.
        let pairs: Vec<(Box<dyn GradientCompressor>, Box<dyn GradientCompressor>)> = vec![
            (Box::new(NoCompression), Box::new(NoCompression)),
            (Box::new(TwoBitQuantizer::new(0.5)), Box::new(TwoBitQuantizer::new(0.5))),
            (Box::new(AdaptiveTwoBit::new(1.0)), Box::new(AdaptiveTwoBit::new(1.0))),
            (Box::new(OneBitQuantizer::new()), Box::new(OneBitQuantizer::new())),
            (Box::new(TernGradQuantizer::new(7)), Box::new(TernGradQuantizer::new(7))),
            (Box::new(QsgdQuantizer::new(4, 7)), Box::new(QsgdQuantizer::new(4, 7))),
            (Box::new(TopKSparsifier::new(0.3)), Box::new(TopKSparsifier::new(0.3))),
            (
                Box::new(TopKSparsifier::new(0.3).with_momentum(0.9)),
                Box::new(TopKSparsifier::new(0.3).with_momentum(0.9)),
            ),
        ];
        for (mut plain, mut pooled) in pairs {
            let pool = BufferPool::new();
            // Dirty the free lists so compress_into must fully overwrite
            // whatever storage it is handed.
            pool.put_f32(vec![13.37; 5]);
            pool.put_bytes(vec![0xAB; 37]);
            pool.put_i8(vec![-77; 11]);
            pool.put_u32(vec![u32::MAX; 3]);
            let n = 12;
            let mut acc_ref = vec![0.25f32; n];
            let mut acc_pooled = acc_ref.clone();
            for g in &stream {
                let a = plain.compress(0, g);
                let b = pooled.compress_into(0, g, &pool);
                prop_assert_eq!(&a, &b, "codec {}", plain.name());
                let mut tmp = vec![0.0f32; n];
                decompress(&a, &mut tmp);
                for (acc, t) in acc_ref.iter_mut().zip(&tmp) { *acc += t; }
                decompress_add(&b, &mut acc_pooled);
                b.recycle(&pool);
            }
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            prop_assert_eq!(bits(&acc_ref), bits(&acc_pooled), "codec {}", plain.name());
        }
    }

    #[test]
    fn wire_bytes_match_payload(g in prop::collection::vec(-2.0f32..2.0, 1..256)) {
        // Each codec's advertised wire_bytes(n) equals the actual payload's
        // wire_bytes() (residual state does not change the wire size).
        let n = g.len();
        let mut two = TwoBitQuantizer::new(0.5);
        prop_assert_eq!(two.compress(0, &g).wire_bytes(), two.wire_bytes(n));
        let mut one = OneBitQuantizer::new();
        prop_assert_eq!(one.compress(0, &g).wire_bytes(), one.wire_bytes(n));
        let mut tern = TernGradQuantizer::new(0);
        prop_assert_eq!(tern.compress(0, &g).wire_bytes(), tern.wire_bytes(n));
        let mut qs = QsgdQuantizer::new(4, 0);
        prop_assert_eq!(qs.compress(0, &g).wire_bytes(), qs.wire_bytes(n));
        let mut tk = TopKSparsifier::new(0.25);
        prop_assert_eq!(tk.compress(0, &g).wire_bytes(), tk.wire_bytes(n));
    }
}
