//! Top-k gradient sparsification with residual accumulation (DGC-style,
//! Lin et al. 2018) — the sparsification family the paper positions
//! CD-SGD against (LAGS-SGD/OMGS-SGD baselines).

use crate::compressed::Compressed;
use crate::pool::BufferPool;
use crate::residual::ResidualStore;
use crate::GradientCompressor;
use cdsgd_tensor::kernel;

/// Top-k sparsifier: transmits only the `ratio` fraction of elements with
/// the largest `|grad + residual|`; everything else accumulates in the
/// residual buffer (DGC's "accumulate until large enough").
///
/// With [`TopKSparsifier::with_momentum`] enabled it implements DGC's
/// *momentum correction with momentum-factor masking*: per-slot momentum
/// `u ← m·u + g` accumulates into velocity `v ← v + u`, the top-k of `v`
/// is transmitted, and both `u` and `v` are zeroed at transmitted slots
/// so stale momentum never double-fires.
#[derive(Debug, Clone)]
pub struct TopKSparsifier {
    ratio: f64,
    momentum: f32,
    residuals: ResidualStore,
    /// Momentum buffers `u` (only used when `momentum > 0`).
    momenta: ResidualStore,
    /// Reused encode scratch (residual-corrected gradient; momentum copy).
    corrected: Vec<f32>,
    u_now: Vec<f32>,
}

impl TopKSparsifier {
    /// Keep the top `ratio` fraction (e.g. `0.001` for DGC's 0.1%).
    /// At least one element is always sent for non-empty gradients.
    ///
    /// # Panics
    /// Panics unless `0 < ratio <= 1`.
    pub fn new(ratio: f64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "ratio must be in (0, 1], got {ratio}"
        );
        Self {
            ratio,
            momentum: 0.0,
            residuals: ResidualStore::new(),
            momenta: ResidualStore::new(),
            corrected: Vec::new(),
            u_now: Vec::new(),
        }
    }

    /// Enable DGC momentum correction with factor `m` (e.g. 0.9).
    ///
    /// # Panics
    /// Panics unless `0 <= m < 1`.
    pub fn with_momentum(mut self, m: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&m),
            "momentum must be in [0, 1), got {m}"
        );
        self.momentum = m;
        self
    }

    /// Number of elements retained from an `n`-element gradient.
    pub fn k_for(&self, n: usize) -> usize {
        if n == 0 {
            0
        } else {
            ((n as f64 * self.ratio).ceil() as usize).max(1).min(n)
        }
    }

    /// Access the residual store (diagnostics).
    pub fn residuals(&self) -> &ResidualStore {
        &self.residuals
    }

    /// Select the top-k of `grad + residual` into `indices`/`values`
    /// (cleared and refilled), updating residual/momentum state — the
    /// math shared by both compress paths.
    fn encode(&mut self, key: usize, grad: &[f32], indices: &mut Vec<u32>, values: &mut Vec<f32>) {
        let k = self.k_for(grad.len());
        // With momentum correction, the "gradient" folded into the
        // velocity (residual) buffer is the momentum-updated u.
        if self.momentum > 0.0 {
            let u = self.momenta.get_mut(key, grad.len());
            kernel::decay_add(u, self.momentum, grad);
            self.u_now.clear();
            self.u_now.extend_from_slice(u);
            let v = self.residuals.get_mut(key, grad.len());
            self.corrected.clear();
            self.corrected.resize(grad.len(), 0.0);
            kernel::add_into(&mut self.corrected, v, &self.u_now);
        } else {
            let res = self.residuals.get_mut(key, grad.len());
            self.corrected.clear();
            self.corrected.resize(grad.len(), 0.0);
            kernel::add_into(&mut self.corrected, grad, res);
        }

        // Select the k largest-magnitude indices. select_nth keeps this
        // O(n) rather than a full sort.
        let corrected = &self.corrected;
        indices.clear();
        indices.extend(0..corrected.len() as u32);
        if k < indices.len() {
            indices.select_nth_unstable_by(k, |&a, &b| {
                corrected[b as usize]
                    .abs()
                    .partial_cmp(&corrected[a as usize].abs())
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            indices.truncate(k);
        }
        indices.sort_unstable(); // deterministic wire order

        values.clear();
        values.extend(indices.iter().map(|&i| corrected[i as usize]));
        // Residual/velocity: transmitted slots reset to zero, others keep x.
        let res = self.residuals.get_mut(key, grad.len());
        res.copy_from_slice(&self.corrected);
        for &i in indices.iter() {
            res[i as usize] = 0.0;
        }
        // DGC momentum-factor masking: kill the momentum of transmitted
        // slots so it cannot re-fire stale directions.
        if self.momentum > 0.0 {
            let u = self.momenta.get_mut(key, grad.len());
            for &i in indices.iter() {
                u[i as usize] = 0.0;
            }
        }
    }
}

impl GradientCompressor for TopKSparsifier {
    fn compress(&mut self, key: usize, grad: &[f32]) -> Compressed {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        self.encode(key, grad, &mut indices, &mut values);
        Compressed::TopK {
            indices,
            values,
            len: grad.len(),
        }
    }

    fn compress_into(&mut self, key: usize, grad: &[f32], pool: &BufferPool) -> Compressed {
        let mut indices = pool.take_u32();
        let mut values = pool.take_f32();
        self.encode(key, grad, &mut indices, &mut values);
        Compressed::TopK {
            indices,
            values,
            len: grad.len(),
        }
    }

    fn name(&self) -> &'static str {
        "topk"
    }

    fn wire_bytes(&self, n: usize) -> usize {
        4 + 8 * self.k_for(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::decompress;

    fn decode(c: &Compressed) -> Vec<f32> {
        let mut out = vec![0.0; c.len()];
        decompress(c, &mut out);
        out
    }

    #[test]
    fn keeps_exactly_the_largest() {
        let mut s = TopKSparsifier::new(0.5);
        let c = s.compress(0, &[0.1, -0.9, 0.5, 0.05]);
        assert_eq!(decode(&c), vec![0.0, -0.9, 0.5, 0.0]);
    }

    #[test]
    fn residual_holds_the_rest_then_fires() {
        let mut s = TopKSparsifier::new(0.25);
        // Only 1 of 4 sent; 0.4 is dropped into residual.
        let d1 = decode(&s.compress(0, &[1.0, 0.4, 0.0, 0.0]));
        assert_eq!(d1, vec![1.0, 0.0, 0.0, 0.0]);
        // Next round 0.4 (residual) beats everything and is transmitted.
        let d2 = decode(&s.compress(0, &[0.0, 0.0, 0.1, 0.0]));
        assert_eq!(d2, vec![0.0, 0.4, 0.0, 0.0]);
    }

    #[test]
    fn mass_conservation() {
        let mut s = TopKSparsifier::new(0.34);
        let rounds = [[0.3f32, -0.2, 0.7], [0.1, 0.1, -0.4], [0.6, -0.5, 0.2]];
        let mut sent = [0.0f32; 3];
        let mut total = [0.0f32; 3];
        for g in &rounds {
            for (t, &x) in total.iter_mut().zip(g) {
                *t += x;
            }
            for (sv, d) in sent.iter_mut().zip(decode(&s.compress(0, g))) {
                *sv += d;
            }
        }
        let res = s.residuals().get(0).unwrap();
        for i in 0..3 {
            assert!((sent[i] + res[i] - total[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn k_for_rounds_up_and_clamps() {
        let s = TopKSparsifier::new(0.001);
        assert_eq!(s.k_for(100), 1);
        assert_eq!(s.k_for(10_000), 10);
        assert_eq!(s.k_for(0), 0);
        let all = TopKSparsifier::new(1.0);
        assert_eq!(all.k_for(7), 7);
    }

    #[test]
    fn wire_bytes_proportional_to_k() {
        let s = TopKSparsifier::new(0.01);
        assert_eq!(s.wire_bytes(10_000), 4 + 8 * 100);
        // 0.1% DGC ratio => ~500x reduction.
        let dgc = TopKSparsifier::new(0.001);
        assert!(dgc.compression_ratio(1_000_000) < 1.0 / 400.0);
    }

    #[test]
    #[should_panic(expected = "ratio")]
    fn bad_ratio_rejected() {
        TopKSparsifier::new(0.0);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn bad_momentum_rejected() {
        TopKSparsifier::new(0.5).with_momentum(1.0);
    }

    #[test]
    fn momentum_correction_accumulates_geometrically() {
        // Constant unit gradient in one slot, never transmitted (the
        // other slot always wins): velocity after t steps is
        // Σ_{j=1..t} Σ_{i=1..j} m^{j-i} — strictly more than plain
        // accumulation (t) for m > 0.
        let mut dgc = TopKSparsifier::new(0.5).with_momentum(0.9);
        let mut plain = TopKSparsifier::new(0.5);
        for _ in 0..4 {
            // Slot 0 huge (always transmitted), slot 1 small constant.
            dgc.compress(0, &[100.0, 1.0]);
            plain.compress(0, &[100.0, 1.0]);
        }
        let v_dgc = dgc.residuals().get(0).unwrap()[1];
        let v_plain = plain.residuals().get(0).unwrap()[1];
        assert_eq!(v_plain, 4.0);
        // With m=0.9: u walks 1, 1.9, 2.71, 3.439; v = 9.049.
        assert!((v_dgc - 9.049).abs() < 1e-3, "v_dgc {v_dgc}");
    }

    #[test]
    fn momentum_masking_zeroes_transmitted_slots() {
        let mut dgc = TopKSparsifier::new(0.5).with_momentum(0.9);
        // Round 1: slot 0 transmits (largest).
        let d1 = decode(&dgc.compress(0, &[10.0, 1.0]));
        assert_eq!(d1[0], 10.0);
        // After masking, slot 0's momentum is dead: a zero gradient round
        // must transmit nothing from slot 0 even though m·u would
        // otherwise carry 9.0 forward.
        let d2 = decode(&dgc.compress(0, &[0.0, 0.0]));
        assert_eq!(d2[0], 0.0, "masked momentum must not re-fire");
    }

    #[test]
    fn zero_momentum_matches_plain_topk() {
        let mut a = TopKSparsifier::new(0.34);
        let mut b = TopKSparsifier::new(0.34).with_momentum(0.0);
        for g in [[0.3f32, -0.2, 0.7], [0.1, 0.1, -0.4]] {
            assert_eq!(a.compress(0, &g), b.compress(0, &g));
        }
    }
}
