//! # cdsgd-compress
//!
//! Gradient compression codecs for the CD-SGD reproduction.
//!
//! The centerpiece is [`TwoBitQuantizer`] — a faithful port of MXNet 1.4's
//! 2-bit threshold gradient compression, the compressor that both BIT-SGD
//! and CD-SGD in the paper use: each gradient element (plus the accumulated
//! residual for that slot) is quantized to one of `{-α, 0, +α}` and packed
//! two bits per element; the quantization error stays in a per-key residual
//! buffer until it crosses the threshold (the paper's "delayed update"
//! source, §2.3).
//!
//! Baseline codecs used in the paper's related-work comparisons are also
//! provided: 1-bit sign quantization with error feedback (signSGD/1-bit
//! SGD), TernGrad's stochastic ternarization, QSGD's stochastic uniform
//! quantization, and DGC-style Top-k sparsification.
//!
//! All codecs implement [`GradientCompressor`] and produce a [`Compressed`]
//! payload that knows its exact wire size, so the parameter server can
//! account for bytes actually "transmitted".
//!
//! ```
//! use cdsgd_compress::{GradientCompressor, TwoBitQuantizer, decompress};
//!
//! let mut q = TwoBitQuantizer::new(0.5);
//! let grad = vec![0.9, -0.7, 0.1, 0.0];
//! let c = q.compress(0, &grad);
//! let mut out = vec![0.0; 4];
//! decompress(&c, &mut out);
//! assert_eq!(out, vec![0.5, -0.5, 0.0, 0.0]);
//! ```

mod adaptive;
mod compressed;
mod onebit;
mod packing;
mod pool;
mod qsgd;
mod residual;
mod terngrad;
mod topk;
mod twobit;

pub use adaptive::AdaptiveTwoBit;
pub use compressed::{decompress, decompress_add, decompress_add_traced, Compressed};
pub use onebit::OneBitQuantizer;
pub use packing::{pack_1bit, pack_1bit_into, pack_2bit, pack_2bit_into, unpack_1bit, unpack_2bit};
pub use pool::BufferPool;
pub use qsgd::QsgdQuantizer;
pub use residual::ResidualStore;
pub use terngrad::TernGradQuantizer;
pub use topk::TopKSparsifier;
pub use twobit::TwoBitQuantizer;

use cdsgd_telemetry::Op;

/// An observer for codec-layer op spans.
///
/// Encode ([`Op::Compress`], "quant") and decode ([`Op::Decompress`],
/// "dequant") intervals are timed *here*, at the codec boundary, rather
/// than by whichever loop happens to call the codec — so a `--trace`
/// breakdown attributes kernel time to the codec no matter which layer
/// (worker push path, server aggregation) drove it. Implementations
/// supply the clock (`now`, seconds since their origin) and decide how a
/// closed interval is recorded; the codec never touches wall-clock APIs
/// itself, which keeps tracing fully inert when no observer is passed.
pub trait CodecSpans {
    /// Current time on the observer's clock, in seconds.
    fn now(&self) -> f64;

    /// Record that `op` ran over the interval `[start_s, self.now()]`.
    fn record(&self, op: Op, start_s: f64);
}

/// A stateful gradient compressor.
///
/// Implementations may hold per-key residual (error-feedback) state, so
/// `compress` takes `&mut self` and a `key` identifying the parameter
/// tensor (layer) the gradient belongs to.
pub trait GradientCompressor: Send {
    /// Compress one gradient tensor, updating any internal residual state
    /// for `key`.
    fn compress(&mut self, key: usize, grad: &[f32]) -> Compressed;

    /// Like [`GradientCompressor::compress`], but drawing the payload's
    /// backing storage from `pool` instead of allocating, so steady-state
    /// iteration loops run allocation-free. Must produce a payload equal
    /// to what `compress` would for the same state and input (the codecs'
    /// encode math is shared between the two paths). The default
    /// implementation ignores the pool and delegates to `compress`.
    fn compress_into(&mut self, key: usize, grad: &[f32], pool: &BufferPool) -> Compressed {
        let _ = pool;
        self.compress(key, grad)
    }

    /// [`GradientCompressor::compress_into`] wrapped in one
    /// [`Op::Compress`] span on `spans` — the codec-layer "quant"
    /// interval callers use when tracing is on.
    fn compress_into_traced(
        &mut self,
        key: usize,
        grad: &[f32],
        pool: &BufferPool,
        spans: &dyn CodecSpans,
    ) -> Compressed {
        let t = spans.now();
        let c = self.compress_into(key, grad, pool);
        spans.record(Op::Compress, t);
        c
    }

    /// Human-readable codec name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// Exact number of bytes an `n`-element gradient occupies on the wire
    /// (payload + header), for the timing model.
    fn wire_bytes(&self, n: usize) -> usize;

    /// Ratio of compressed to raw (4-byte/element) size; < 1 is smaller.
    fn compression_ratio(&self, n: usize) -> f64 {
        if n == 0 {
            return 1.0;
        }
        self.wire_bytes(n) as f64 / (4 * n) as f64
    }

    /// Snapshot the codec's error-feedback state for a durable checkpoint:
    /// one `(key, residual)` entry per parameter tensor, sorted by key.
    /// Stateless codecs return the default empty vec.
    fn export_state(&self) -> Vec<(usize, Vec<f32>)> {
        Vec::new()
    }

    /// Restore state captured by [`GradientCompressor::export_state`].
    /// No-op for stateless codecs.
    fn import_state(&mut self, entries: &[(usize, Vec<f32>)]) {
        let _ = entries;
    }
}

/// Identity "codec": sends raw f32 gradients. Used for S-SGD/OD-SGD and
/// for CD-SGD's k-step correction iterations.
#[derive(Debug, Default, Clone)]
pub struct NoCompression;

impl GradientCompressor for NoCompression {
    fn compress(&mut self, _key: usize, grad: &[f32]) -> Compressed {
        Compressed::Raw(grad.to_vec())
    }

    fn compress_into(&mut self, _key: usize, grad: &[f32], pool: &BufferPool) -> Compressed {
        let mut v = pool.take_f32();
        v.extend_from_slice(grad);
        Compressed::Raw(v)
    }

    fn name(&self) -> &'static str {
        "raw"
    }

    fn wire_bytes(&self, n: usize) -> usize {
        4 + 4 * n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_codec_round_trips() {
        let mut c = NoCompression;
        let grad = vec![1.0, -2.0, 3.5];
        let comp = c.compress(0, &grad);
        let mut out = vec![0.0; 3];
        decompress(&comp, &mut out);
        assert_eq!(out, grad);
        // 4-byte length header + 3 f32s; the header makes "raw" slightly
        // larger than the bare tensor bytes.
        assert_eq!(c.wire_bytes(3), 4 + 12);
        assert_eq!(c.compression_ratio(3), 16.0 / 12.0);
    }
}
