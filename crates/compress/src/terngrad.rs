//! TernGrad (Wen et al. 2017): unbiased stochastic ternarization.

use crate::compressed::Compressed;
use crate::packing::{pack_2bit, pack_2bit_into};
use crate::pool::BufferPool;
use crate::GradientCompressor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// TernGrad quantizer.
///
/// Each gradient element becomes `s_max * sign(g_i) * b_i` where
/// `s_max = max_j |g_j|` and `b_i ~ Bernoulli(|g_i| / s_max)`. The codes
/// are *unbiased* in expectation, so no residual buffer is kept (matching
/// the original algorithm). Symbols pack 2 bits per element like the
/// threshold quantizer.
#[derive(Debug, Clone)]
pub struct TernGradQuantizer {
    rng: StdRng,
    /// Reused symbol scratch so the encode path stays allocation-free.
    symbols: Vec<u8>,
}

impl TernGradQuantizer {
    /// New quantizer with a deterministic seed for its Bernoulli draws.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            symbols: Vec::new(),
        }
    }

    /// Ternarize `grad` into `self.symbols`; returns the scale `s_max`.
    /// Shared by both compress paths (identical RNG draw sequence).
    fn encode_symbols(&mut self, grad: &[f32]) -> f32 {
        let s_max = grad.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        self.symbols.clear();
        self.symbols.resize(grad.len(), 0);
        if s_max > 0.0 {
            for (s, &g) in self.symbols.iter_mut().zip(grad) {
                let p = g.abs() / s_max;
                if self.rng.gen::<f32>() < p {
                    *s = if g >= 0.0 { 1 } else { 2 };
                }
            }
        }
        s_max
    }
}

impl GradientCompressor for TernGradQuantizer {
    fn compress(&mut self, _key: usize, grad: &[f32]) -> Compressed {
        let s_max = self.encode_symbols(grad);
        Compressed::Tern {
            scale: s_max,
            packed: pack_2bit(&self.symbols),
            len: grad.len(),
        }
    }

    fn compress_into(&mut self, _key: usize, grad: &[f32], pool: &BufferPool) -> Compressed {
        let s_max = self.encode_symbols(grad);
        let mut packed = pool.take_bytes();
        pack_2bit_into(&self.symbols, &mut packed);
        Compressed::Tern {
            scale: s_max,
            packed,
            len: grad.len(),
        }
    }

    fn name(&self) -> &'static str {
        "terngrad"
    }

    fn wire_bytes(&self, n: usize) -> usize {
        4 + 4 + n.div_ceil(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::decompress;

    fn decode(c: &Compressed) -> Vec<f32> {
        let mut out = vec![0.0; c.len()];
        decompress(c, &mut out);
        out
    }

    #[test]
    fn outputs_only_ternary_values() {
        let mut q = TernGradQuantizer::new(1);
        let grad = vec![0.3, -0.9, 0.0, 0.5, -0.2];
        let c = q.compress(0, &grad);
        let s_max = 0.9;
        for v in decode(&c) {
            assert!(
                v == 0.0 || (v - s_max).abs() < 1e-6 || (v + s_max).abs() < 1e-6,
                "{v}"
            );
        }
    }

    #[test]
    fn max_magnitude_element_always_fires() {
        // p = |g|/s_max = 1 for the max element, so it always transmits.
        let mut q = TernGradQuantizer::new(2);
        for _ in 0..20 {
            let c = q.compress(0, &[0.1, -1.0, 0.2]);
            let d = decode(&c);
            assert!(
                (d[1] + 1.0).abs() < 1e-6,
                "max element must fire, got {d:?}"
            );
        }
    }

    #[test]
    fn unbiased_in_expectation() {
        let mut q = TernGradQuantizer::new(3);
        let grad = vec![0.5f32, -0.25, 0.75];
        let trials = 20_000;
        let mut mean = vec![0.0f64; 3];
        for _ in 0..trials {
            for (m, v) in mean.iter_mut().zip(decode(&q.compress(0, &grad))) {
                *m += v as f64;
            }
        }
        for (m, &g) in mean.iter_mut().zip(&grad) {
            *m /= trials as f64;
            assert!((*m - g as f64).abs() < 0.02, "E[q]={m} vs g={g}");
        }
    }

    #[test]
    fn zero_gradient_is_zero() {
        let mut q = TernGradQuantizer::new(4);
        let c = q.compress(0, &[0.0; 8]);
        assert_eq!(decode(&c), vec![0.0; 8]);
    }
}
