//! QSGD (Alistarh et al. 2017): stochastic uniform quantization against
//! the gradient's L2 norm.

use crate::compressed::Compressed;
use crate::pool::BufferPool;
use crate::GradientCompressor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// QSGD quantizer with `levels` uniform quantization levels.
///
/// Element `g_i` encodes to an integer level `l_i` with
/// `|g_i|/‖g‖₂ ∈ [l/L, (l+1)/L)` rounded stochastically so that
/// `E[decode] = g`. Codes are signed bytes (`levels ≤ 127`).
#[derive(Debug, Clone)]
pub struct QsgdQuantizer {
    levels: u8,
    rng: StdRng,
}

impl QsgdQuantizer {
    /// New quantizer. `levels` is QSGD's `s` parameter (e.g. 4 for
    /// "2-bit-class" fidelity, 128 would be 8-bit-class).
    ///
    /// # Panics
    /// Panics if `levels == 0`.
    pub fn new(levels: u8, seed: u64) -> Self {
        assert!(levels > 0, "need at least one quantization level");
        Self {
            levels,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The number of levels `s`.
    pub fn levels(&self) -> u8 {
        self.levels
    }

    /// Quantize `grad` into `codes` (cleared and refilled); returns the
    /// L2 norm. Shared by both compress paths (identical RNG draws).
    fn encode_codes(&mut self, grad: &[f32], codes: &mut Vec<i8>) -> f32 {
        let norm = grad.iter().map(|x| x * x).sum::<f32>().sqrt();
        let l = self.levels as f32;
        codes.clear();
        codes.resize(grad.len(), 0);
        if norm > 0.0 {
            for (c, &g) in codes.iter_mut().zip(grad) {
                let u = g.abs() / norm * l; // in [0, L]
                let lo = u.floor();
                let p = u - lo;
                let level = lo + if self.rng.gen::<f32>() < p { 1.0 } else { 0.0 };
                let signed = if g >= 0.0 { level } else { -level };
                *c = signed.clamp(-127.0, 127.0) as i8;
            }
        }
        norm
    }
}

impl GradientCompressor for QsgdQuantizer {
    fn compress(&mut self, _key: usize, grad: &[f32]) -> Compressed {
        let mut codes = Vec::new();
        let norm = self.encode_codes(grad, &mut codes);
        Compressed::Qsgd {
            norm,
            levels: self.levels,
            codes,
            len: grad.len(),
        }
    }

    fn compress_into(&mut self, _key: usize, grad: &[f32], pool: &BufferPool) -> Compressed {
        let mut codes = pool.take_i8();
        let norm = self.encode_codes(grad, &mut codes);
        Compressed::Qsgd {
            norm,
            levels: self.levels,
            codes,
            len: grad.len(),
        }
    }

    fn name(&self) -> &'static str {
        "qsgd"
    }

    fn wire_bytes(&self, n: usize) -> usize {
        let bits = (2 * self.levels as usize + 1)
            .next_power_of_two()
            .trailing_zeros() as usize;
        4 + 4 + 1 + (n * bits).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::decompress;

    fn decode(c: &Compressed) -> Vec<f32> {
        let mut out = vec![0.0; c.len()];
        decompress(c, &mut out);
        out
    }

    #[test]
    fn levels_bound_the_codes() {
        let mut q = QsgdQuantizer::new(4, 1);
        let grad = vec![1.0, -1.0, 0.5, 0.0];
        if let Compressed::Qsgd { codes, .. } = q.compress(0, &grad) {
            assert!(codes.iter().all(|&c| c.unsigned_abs() <= 4));
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn unbiased_in_expectation() {
        let mut q = QsgdQuantizer::new(4, 2);
        let grad = vec![0.6f32, -0.3, 0.1];
        let trials = 20_000;
        let mut mean = vec![0.0f64; 3];
        for _ in 0..trials {
            for (m, v) in mean.iter_mut().zip(decode(&q.compress(0, &grad))) {
                *m += v as f64;
            }
        }
        for (m, &g) in mean.iter_mut().zip(&grad) {
            *m /= trials as f64;
            assert!((*m - g as f64).abs() < 0.02, "E[q]={m} vs g={g}");
        }
    }

    #[test]
    fn zero_gradient_encodes_to_zero() {
        let mut q = QsgdQuantizer::new(8, 3);
        assert_eq!(decode(&q.compress(0, &[0.0; 5])), vec![0.0; 5]);
    }

    #[test]
    fn wire_bytes_shrink_with_fewer_levels() {
        let q4 = QsgdQuantizer::new(4, 0); // 9 symbols -> 4 bits
        let q64 = QsgdQuantizer::new(64, 0); // 129 symbols -> 8 bits
        assert!(q4.wire_bytes(1024) < q64.wire_bytes(1024));
        assert_eq!(q4.wire_bytes(1024), 8 + 1 + 512);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_levels_rejected() {
        QsgdQuantizer::new(0, 0);
    }
}
