//! MXNet-style 2-bit threshold gradient quantization with residual
//! accumulation — the compressor used by the paper's BIT-SGD and CD-SGD.

use crate::compressed::Compressed;
use crate::packing::{pack_2bit, pack_2bit_into};
use crate::pool::BufferPool;
use crate::residual::ResidualStore;
use crate::GradientCompressor;
use cdsgd_tensor::kernel;

/// 2-bit threshold quantizer (MXNet 1.4 `gc_type="2bit"` semantics).
///
/// For each element, the value considered is `x = grad[i] + residual[i]`:
///
/// * `x >= threshold`  → transmit `+threshold` (code 1)
/// * `x <= -threshold` → transmit `-threshold` (code 2)
/// * otherwise         → transmit `0` (code 0)
///
/// The untransmitted remainder `x - q` is stored back into the residual
/// buffer for the key, so no gradient mass is ever dropped — only delayed
/// (paper §2.3 and §3.4.1 update rules).
///
/// `with_residual(false)` disables error feedback; this is the ablation
/// mode the benchmark suite uses to show why residuals matter.
#[derive(Debug, Clone)]
pub struct TwoBitQuantizer {
    threshold: f32,
    residuals: ResidualStore,
    use_residual: bool,
    /// Reused symbol scratch so the encode path stays allocation-free.
    symbols: Vec<u8>,
}

impl TwoBitQuantizer {
    /// Quantizer with the given positive threshold α (the paper uses 0.5).
    ///
    /// # Panics
    /// Panics if `threshold` is not strictly positive and finite.
    pub fn new(threshold: f32) -> Self {
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "threshold must be positive and finite, got {threshold}"
        );
        Self {
            threshold,
            residuals: ResidualStore::new(),
            use_residual: true,
            symbols: Vec::new(),
        }
    }

    /// Enable/disable the residual (error-feedback) buffer. Ablation knob.
    pub fn with_residual(mut self, on: bool) -> Self {
        self.use_residual = on;
        self
    }

    /// The quantization threshold α.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }

    /// Access the residual store (diagnostics).
    pub fn residuals(&self) -> &ResidualStore {
        &self.residuals
    }

    /// Quantize `grad + residual` into `self.symbols`, updating the
    /// residual state — the math shared by both compress paths.
    fn encode_symbols(&mut self, key: usize, grad: &[f32]) {
        let thr = self.threshold;
        self.symbols.clear();
        self.symbols.resize(grad.len(), 0);
        if self.use_residual {
            let res = self.residuals.get_mut(key, grad.len());
            kernel::threshold_scan_residual(grad, thr, &mut self.symbols, res);
        } else {
            kernel::threshold_scan_plain(grad, thr, &mut self.symbols);
        }
    }
}

impl GradientCompressor for TwoBitQuantizer {
    fn compress(&mut self, key: usize, grad: &[f32]) -> Compressed {
        self.encode_symbols(key, grad);
        Compressed::TwoBit {
            threshold: self.threshold,
            packed: pack_2bit(&self.symbols),
            len: grad.len(),
        }
    }

    fn compress_into(&mut self, key: usize, grad: &[f32], pool: &BufferPool) -> Compressed {
        self.encode_symbols(key, grad);
        let mut packed = pool.take_bytes();
        pack_2bit_into(&self.symbols, &mut packed);
        Compressed::TwoBit {
            threshold: self.threshold,
            packed,
            len: grad.len(),
        }
    }

    fn name(&self) -> &'static str {
        "2bit"
    }

    fn wire_bytes(&self, n: usize) -> usize {
        4 + 4 + n.div_ceil(4)
    }

    fn export_state(&self) -> Vec<(usize, Vec<f32>)> {
        self.residuals.export_state()
    }

    fn import_state(&mut self, entries: &[(usize, Vec<f32>)]) {
        self.residuals.import_state(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::decompress;

    fn decode(c: &Compressed) -> Vec<f32> {
        let mut out = vec![0.0; c.len()];
        decompress(c, &mut out);
        out
    }

    #[test]
    fn saturating_values_transmit_threshold() {
        let mut q = TwoBitQuantizer::new(0.5);
        let c = q.compress(0, &[0.9, -0.7, 0.5, -0.5]);
        assert_eq!(decode(&c), vec![0.5, -0.5, 0.5, -0.5]);
    }

    #[test]
    fn small_values_transmit_zero_and_accumulate() {
        let mut q = TwoBitQuantizer::new(0.5);
        let c = q.compress(0, &[0.3, -0.2]);
        assert_eq!(decode(&c), vec![0.0, 0.0]);
        assert_eq!(q.residuals().get(0).unwrap(), &[0.3, -0.2]);
    }

    #[test]
    fn residual_crosses_threshold_and_fires() {
        let mut q = TwoBitQuantizer::new(0.5);
        // Two sub-threshold gradients of 0.3 accumulate to 0.6 ≥ 0.5.
        let c1 = q.compress(0, &[0.3]);
        assert_eq!(decode(&c1), vec![0.0]);
        let c2 = q.compress(0, &[0.3]);
        assert_eq!(decode(&c2), vec![0.5]);
        // Residual keeps the remainder 0.6 - 0.5.
        let r = q.residuals().get(0).unwrap()[0];
        assert!((r - 0.1).abs() < 1e-6, "residual {r}");
    }

    #[test]
    fn no_information_loss_over_time() {
        // Error-feedback invariant: sum(decoded) + residual == sum(grads).
        let mut q = TwoBitQuantizer::new(0.5);
        let grads = [[0.23f32], [0.31], [-0.8], [0.05], [0.62], [-0.11]];
        let mut transmitted = 0.0f32;
        let mut total = 0.0f32;
        for g in &grads {
            total += g[0];
            transmitted += decode(&q.compress(0, g))[0];
        }
        let residual = q.residuals().get(0).unwrap()[0];
        assert!((transmitted + residual - total).abs() < 1e-5);
    }

    #[test]
    fn residual_disabled_drops_information() {
        let mut q = TwoBitQuantizer::new(0.5).with_residual(false);
        let c1 = q.compress(0, &[0.3]);
        assert_eq!(decode(&c1), vec![0.0]);
        let c2 = q.compress(0, &[0.3]);
        // Without error feedback the second 0.3 still reads 0.
        assert_eq!(decode(&c2), vec![0.0]);
        assert!(q.residuals().get(0).is_none());
    }

    #[test]
    fn keys_are_independent() {
        let mut q = TwoBitQuantizer::new(0.5);
        q.compress(0, &[0.4]);
        q.compress(1, &[-0.4]);
        assert_eq!(q.residuals().get(0).unwrap(), &[0.4]);
        assert_eq!(q.residuals().get(1).unwrap(), &[-0.4]);
    }

    #[test]
    fn wire_bytes_sixteen_x_reduction() {
        let q = TwoBitQuantizer::new(0.5);
        // 1M elements: 4 MB raw -> ~0.25 MB + headers.
        assert_eq!(q.wire_bytes(1_000_000), 8 + 250_000);
        assert!(q.compression_ratio(1_000_000) < 1.0 / 15.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        TwoBitQuantizer::new(0.0);
    }

    #[test]
    fn empty_gradient_ok() {
        let mut q = TwoBitQuantizer::new(0.5);
        let c = q.compress(0, &[]);
        assert_eq!(c.len(), 0);
        assert_eq!(c.wire_bytes(), 8);
    }
}
