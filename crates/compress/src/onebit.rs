//! 1-bit sign quantization with error feedback (Seide et al. 2014 /
//! signSGD with EF) — the most aggressive quantization baseline the paper
//! cites (§1, [26]).

use crate::compressed::Compressed;
use crate::packing::{pack_1bit, pack_1bit_into};
use crate::pool::BufferPool;
use crate::residual::ResidualStore;
use crate::GradientCompressor;
use cdsgd_tensor::kernel;

/// 1-bit quantizer: each element of `grad + residual` is transmitted as its
/// sign, scaled by the mean absolute value of the (residual-corrected)
/// gradient so the decoded magnitude is unbiased in L1. Error feedback
/// keeps the quantization error for the next round.
#[derive(Debug, Clone, Default)]
pub struct OneBitQuantizer {
    residuals: ResidualStore,
    /// Reused encode scratch (corrected gradient and sign stream).
    corrected: Vec<f32>,
    bits: Vec<bool>,
}

impl OneBitQuantizer {
    /// New quantizer with empty residual state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Access the residual store (diagnostics).
    pub fn residuals(&self) -> &ResidualStore {
        &self.residuals
    }

    /// Quantize `grad + residual` into `self.bits`, updating the residual
    /// state; returns the scale. Shared by both compress paths.
    fn encode_bits(&mut self, key: usize, grad: &[f32]) -> f32 {
        let res = self.residuals.get_mut(key, grad.len());
        self.corrected.clear();
        self.corrected.resize(grad.len(), 0.0);
        kernel::add_into(&mut self.corrected, grad, res);
        let scale = if self.corrected.is_empty() {
            0.0
        } else {
            kernel::reduce_abs_sum(&self.corrected) / self.corrected.len() as f32
        };
        self.bits.clear();
        self.bits.resize(grad.len(), false);
        kernel::sign_residual(&self.corrected, scale, &mut self.bits, res);
        scale
    }
}

impl GradientCompressor for OneBitQuantizer {
    fn compress(&mut self, key: usize, grad: &[f32]) -> Compressed {
        let scale = self.encode_bits(key, grad);
        Compressed::OneBit {
            scale,
            signs: pack_1bit(&self.bits),
            len: grad.len(),
        }
    }

    fn compress_into(&mut self, key: usize, grad: &[f32], pool: &BufferPool) -> Compressed {
        let scale = self.encode_bits(key, grad);
        let mut signs = pool.take_bytes();
        pack_1bit_into(&self.bits, &mut signs);
        Compressed::OneBit {
            scale,
            signs,
            len: grad.len(),
        }
    }

    fn name(&self) -> &'static str {
        "1bit"
    }

    fn wire_bytes(&self, n: usize) -> usize {
        4 + 4 + n.div_ceil(8)
    }

    fn export_state(&self) -> Vec<(usize, Vec<f32>)> {
        self.residuals.export_state()
    }

    fn import_state(&mut self, entries: &[(usize, Vec<f32>)]) {
        self.residuals.import_state(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::decompress;

    fn decode(c: &Compressed) -> Vec<f32> {
        let mut out = vec![0.0; c.len()];
        decompress(c, &mut out);
        out
    }

    #[test]
    fn signs_and_scale() {
        let mut q = OneBitQuantizer::new();
        let c = q.compress(0, &[1.0, -3.0]);
        // scale = mean(|1|, |3|) = 2
        assert_eq!(decode(&c), vec![2.0, -2.0]);
    }

    #[test]
    fn error_feedback_conserves_mass() {
        let mut q = OneBitQuantizer::new();
        let grads = [[0.9f32, -0.1], [0.2, 0.2], [-1.0, 0.4]];
        let mut sent = [0.0f32; 2];
        let mut total = [0.0f32; 2];
        for g in &grads {
            for (t, &x) in total.iter_mut().zip(g) {
                *t += x;
            }
            for (s, d) in sent.iter_mut().zip(decode(&q.compress(0, g))) {
                *s += d;
            }
        }
        let res = q.residuals().get(0).unwrap();
        for i in 0..2 {
            assert!((sent[i] + res[i] - total[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn thirty_two_x_wire_reduction() {
        let q = OneBitQuantizer::new();
        assert_eq!(q.wire_bytes(800), 8 + 100);
        assert!(q.compression_ratio(1 << 20) < 1.0 / 30.0);
    }

    #[test]
    fn empty_gradient_ok() {
        let mut q = OneBitQuantizer::new();
        let c = q.compress(0, &[]);
        assert_eq!(c.len(), 0);
        assert!(decode(&c).is_empty());
    }
}
