//! A small recycling pool for the buffers that back [`crate::Compressed`]
//! payloads.
//!
//! The push hot path encodes one payload per parameter key per iteration;
//! without recycling that is a fresh heap allocation per key per round on
//! the worker *and* a deallocation on the server once the payload is
//! aggregated. The pool closes that loop: codecs draw output storage from
//! it in [`crate::GradientCompressor::compress_into`], and the server
//! returns the storage with [`crate::Compressed::recycle`] after
//! decoding, so steady-state training performs no payload allocations at
//! all.
//!
//! Cloning a `BufferPool` is cheap and shares the underlying free lists,
//! which is how the server thread and all worker threads exchange
//! buffers. Each free list is capped so a burst of in-flight payloads
//! cannot pin memory forever.

use std::sync::{Arc, Mutex};

/// Maximum number of retained buffers per element type. Generous for the
/// steady state (a few payloads in flight per worker per key) while
/// bounding worst-case retention.
const MAX_PER_KIND: usize = 64;

/// Shared free lists for the vector types payloads are built from.
#[derive(Clone, Debug, Default)]
pub struct BufferPool {
    inner: Arc<Mutex<PoolInner>>,
}

#[derive(Debug, Default)]
struct PoolInner {
    f32s: Vec<Vec<f32>>,
    bytes: Vec<Vec<u8>>,
    i8s: Vec<Vec<i8>>,
    u32s: Vec<Vec<u32>>,
    hits: u64,
    misses: u64,
}

macro_rules! take_put {
    ($take:ident, $put:ident, $field:ident, $t:ty) => {
        /// Take a cleared buffer (empty, but typically with capacity from
        /// an earlier life) or a fresh one if the pool is empty.
        pub fn $take(&self) -> Vec<$t> {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            match inner.$field.pop() {
                Some(mut v) => {
                    inner.hits += 1;
                    v.clear();
                    v
                }
                None => {
                    inner.misses += 1;
                    Vec::new()
                }
            }
        }

        /// Return a buffer to the pool for reuse. Dropped (freed) if the
        /// free list is full.
        pub fn $put(&self, v: Vec<$t>) {
            if v.capacity() == 0 {
                return;
            }
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.$field.len() < MAX_PER_KIND {
                inner.$field.push(v);
            }
        }
    };
}

impl BufferPool {
    /// Fresh pool with empty free lists.
    pub fn new() -> Self {
        Self::default()
    }

    take_put!(take_f32, put_f32, f32s, f32);
    take_put!(take_bytes, put_bytes, bytes, u8);
    take_put!(take_i8, put_i8, i8s, i8);
    take_put!(take_u32, put_u32, u32s, u32);

    /// Number of takes served from the free lists.
    pub fn hits(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).hits
    }

    /// Number of takes that had to allocate fresh.
    pub fn misses(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_round_trip_and_keep_capacity() {
        let pool = BufferPool::new();
        let mut v = pool.take_f32();
        assert_eq!(pool.misses(), 1);
        v.extend_from_slice(&[1.0; 100]);
        let cap = v.capacity();
        pool.put_f32(v);
        let v2 = pool.take_f32();
        assert_eq!(pool.hits(), 1);
        assert!(v2.is_empty(), "recycled buffers come back cleared");
        assert_eq!(v2.capacity(), cap, "capacity survives recycling");
    }

    #[test]
    fn clones_share_the_free_lists() {
        let a = BufferPool::new();
        let b = a.clone();
        a.put_bytes(vec![7u8; 8]);
        let v = b.take_bytes();
        assert_eq!(b.hits(), 1);
        assert!(v.capacity() >= 8);
    }

    #[test]
    fn free_lists_are_capped() {
        let pool = BufferPool::new();
        for _ in 0..(MAX_PER_KIND + 10) {
            pool.put_u32(vec![0u32; 4]);
        }
        let mut reclaimed = 0;
        while pool.take_u32().capacity() > 0 {
            reclaimed += 1;
        }
        assert_eq!(reclaimed, MAX_PER_KIND);
    }

    #[test]
    fn empty_buffers_are_not_retained() {
        let pool = BufferPool::new();
        pool.put_i8(Vec::new());
        assert_eq!(pool.take_i8().capacity(), 0);
        assert_eq!(pool.hits(), 0, "zero-capacity buffers are dropped");
    }
}
