//! Bit-packing codecs: 2-bit and 1-bit symbol streams in `Vec<u8>`.
//!
//! MXNet's 2-bit compressor packs 16 quantized values per `u32`; packing
//! four 2-bit symbols per byte is the same wire density with simpler
//! endianness semantics. The actual pack/unpack loops are the SIMD
//! kernels in [`cdsgd_tensor::kernel`]; this module keeps the
//! `Vec`-allocating wire API.

use cdsgd_tensor::kernel;

/// A 2-bit symbol: `0` = zero, `1` = +threshold, `2` = -threshold.
/// Symbol `3` is reserved/unused (matches MXNet which also leaves one code
/// point unused).
pub type Sym2 = u8;

/// Pack a slice of 2-bit symbols (values 0..=3) into bytes, 4 per byte,
/// little-end first (symbol `i` occupies bits `2*(i%4) .. 2*(i%4)+2`).
pub fn pack_2bit(symbols: &[Sym2]) -> Vec<u8> {
    let mut out = Vec::new();
    pack_2bit_into(symbols, &mut out);
    out
}

/// [`pack_2bit`] into a caller-provided buffer (cleared first), so hot
/// paths can recycle the output storage instead of allocating per call.
pub fn pack_2bit_into(symbols: &[Sym2], out: &mut Vec<u8>) {
    out.clear();
    out.resize(symbols.len().div_ceil(4), 0);
    kernel::pack_2bit(symbols, out);
}

/// Unpack `n` 2-bit symbols from a byte stream produced by [`pack_2bit`].
///
/// # Panics
/// Panics if `bytes` is too short for `n` symbols.
pub fn unpack_2bit(bytes: &[u8], n: usize) -> Vec<Sym2> {
    assert!(
        bytes.len() * 4 >= n,
        "byte stream too short: {} bytes for {n} symbols",
        bytes.len()
    );
    let mut out = vec![0u8; n];
    kernel::unpack_2bit(bytes, &mut out);
    out
}

/// Pack a slice of booleans into bytes, 8 per byte, little-end first.
pub fn pack_1bit(bits: &[bool]) -> Vec<u8> {
    let mut out = Vec::new();
    pack_1bit_into(bits, &mut out);
    out
}

/// [`pack_1bit`] into a caller-provided buffer (cleared first).
pub fn pack_1bit_into(bits: &[bool], out: &mut Vec<u8>) {
    out.clear();
    out.resize(bits.len().div_ceil(8), 0);
    kernel::pack_1bit(bits, out);
}

/// Unpack `n` booleans from a byte stream produced by [`pack_1bit`].
///
/// # Panics
/// Panics if `bytes` is too short for `n` bits.
pub fn unpack_1bit(bytes: &[u8], n: usize) -> Vec<bool> {
    assert!(
        bytes.len() * 8 >= n,
        "byte stream too short: {} bytes for {n} bits",
        bytes.len()
    );
    let mut out = vec![false; n];
    kernel::unpack_1bit(bytes, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_bit_round_trip() {
        let syms: Vec<u8> = vec![0, 1, 2, 0, 1, 1, 2, 2, 0];
        let packed = pack_2bit(&syms);
        assert_eq!(packed.len(), 3); // ceil(9/4)
        assert_eq!(unpack_2bit(&packed, 9), syms);
    }

    #[test]
    fn two_bit_all_codepoints() {
        let syms: Vec<u8> = vec![0, 1, 2, 3];
        assert_eq!(unpack_2bit(&pack_2bit(&syms), 4), syms);
    }

    #[test]
    fn two_bit_empty() {
        assert!(pack_2bit(&[]).is_empty());
        assert!(unpack_2bit(&[], 0).is_empty());
    }

    #[test]
    fn two_bit_density() {
        // Exactly 4 symbols per byte.
        for n in [1, 4, 5, 16, 17, 1000] {
            let syms = vec![1u8; n];
            assert_eq!(pack_2bit(&syms).len(), n.div_ceil(4));
        }
    }

    #[test]
    fn one_bit_round_trip() {
        let bits: Vec<bool> = (0..19).map(|i| i % 3 == 0).collect();
        let packed = pack_1bit(&bits);
        assert_eq!(packed.len(), 3);
        assert_eq!(unpack_1bit(&packed, 19), bits);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn unpack_short_stream_panics() {
        unpack_2bit(&[0u8], 5);
    }
}
