//! The [`Compressed`] wire payload and its decoders.

use crate::pool::BufferPool;
use cdsgd_tensor::kernel;

/// A compressed gradient as it would travel over the network.
///
/// Every variant carries enough information to decode without external
/// state, and [`Compressed::wire_bytes`] reports the exact size a real
/// implementation would transmit (payload + minimal header), which the
/// timing substrate uses for communication-cost accounting.
#[derive(Clone, Debug, PartialEq)]
pub enum Compressed {
    /// Uncompressed f32 payload (S-SGD pushes and CD-SGD correction steps).
    Raw(Vec<f32>),
    /// MXNet-style 2-bit threshold quantization: symbols decode to
    /// `{0, +threshold, -threshold}`.
    TwoBit {
        threshold: f32,
        packed: Vec<u8>,
        len: usize,
    },
    /// 1-bit sign quantization with a shared magnitude (signSGD w/ scale).
    OneBit {
        scale: f32,
        signs: Vec<u8>,
        len: usize,
    },
    /// TernGrad stochastic ternarization: symbols decode to
    /// `{0, +scale, -scale}`.
    Tern {
        scale: f32,
        packed: Vec<u8>,
        len: usize,
    },
    /// QSGD stochastic uniform quantization: per-element signed level in
    /// `[-levels, +levels]`, decoded as `norm * level / levels`.
    Qsgd {
        norm: f32,
        levels: u8,
        codes: Vec<i8>,
        len: usize,
    },
    /// Top-k sparsification: explicit (index, value) pairs.
    TopK {
        indices: Vec<u32>,
        values: Vec<f32>,
        len: usize,
    },
}

impl Compressed {
    /// Number of f32 elements the payload decodes to.
    pub fn len(&self) -> usize {
        match self {
            Compressed::Raw(v) => v.len(),
            Compressed::TwoBit { len, .. }
            | Compressed::OneBit { len, .. }
            | Compressed::Tern { len, .. }
            | Compressed::Qsgd { len, .. }
            | Compressed::TopK { len, .. } => *len,
        }
    }

    /// True if the payload decodes to zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exact bytes this payload occupies on the wire: a uniform 4-byte
    /// element-count header on every variant, plus the variant's scalar
    /// fields and payload bytes. Keeping the header accounting identical
    /// across variants makes cross-codec traffic numbers directly
    /// comparable (previously `Raw` and `TopK` omitted it while the
    /// quantizers implicitly folded it into their scalar field).
    pub fn wire_bytes(&self) -> usize {
        4 + match self {
            Compressed::Raw(v) => 4 * v.len(),
            // threshold (4) + packed bytes
            Compressed::TwoBit { packed, .. } => 4 + packed.len(),
            // scale (4) + sign bits
            Compressed::OneBit { signs, .. } => 4 + signs.len(),
            // scale (4) + packed 2-bit codes
            Compressed::Tern { packed, .. } => 4 + packed.len(),
            // norm (4) + levels (1) + fixed-width codes. Real QSGD uses
            // Elias coding; fixed ceil(log2(2L+1))-bit codes are a
            // conservative stand-in.
            Compressed::Qsgd { levels, len, .. } => {
                let bits = (2 * *levels as usize + 1)
                    .next_power_of_two()
                    .trailing_zeros() as usize;
                4 + 1 + (len * bits).div_ceil(8)
            }
            // (u32 index + f32 value) per retained element
            Compressed::TopK { indices, .. } => 8 * indices.len(),
        }
    }

    /// True for payloads that carry per-element codes smaller than f32.
    pub fn is_compressed(&self) -> bool {
        !matches!(self, Compressed::Raw(_))
    }

    /// Return the payload's backing storage to `pool` for reuse by a
    /// later [`crate::GradientCompressor::compress_into`] call. The
    /// server calls this after aggregating a payload, closing the
    /// worker→server→worker buffer loop.
    pub fn recycle(self, pool: &BufferPool) {
        match self {
            Compressed::Raw(v) => pool.put_f32(v),
            Compressed::TwoBit { packed, .. } | Compressed::Tern { packed, .. } => {
                pool.put_bytes(packed)
            }
            Compressed::OneBit { signs, .. } => pool.put_bytes(signs),
            Compressed::Qsgd { codes, .. } => pool.put_i8(codes),
            Compressed::TopK {
                indices, values, ..
            } => {
                pool.put_u32(indices);
                pool.put_f32(values);
            }
        }
    }
}

/// Decode a payload into `out`, overwriting it.
///
/// # Panics
/// Panics if `out.len()` differs from the encoded length.
pub fn decompress(c: &Compressed, out: &mut [f32]) {
    assert_eq!(out.len(), c.len(), "decode buffer length mismatch");
    out.fill(0.0);
    decompress_add(c, out);
}

/// Decode a payload into `out`, *adding* to the existing contents.
/// This is what the server's aggregation loop uses: it decodes each
/// worker's payload straight into the accumulation buffer.
pub fn decompress_add(c: &Compressed, out: &mut [f32]) {
    assert_eq!(out.len(), c.len(), "decode buffer length mismatch");
    match c {
        Compressed::Raw(v) => kernel::add_assign(out, v),
        Compressed::TwoBit {
            threshold, packed, ..
        } => kernel::unpack_2bit_add(packed, *threshold, out),
        Compressed::OneBit { scale, signs, .. } => kernel::unpack_1bit_add(signs, *scale, out),
        Compressed::Tern { scale, packed, .. } => kernel::unpack_2bit_add(packed, *scale, out),
        Compressed::Qsgd {
            norm,
            levels,
            codes,
            ..
        } => {
            let inv = norm / *levels as f32;
            for (o, &c) in out.iter_mut().zip(codes) {
                *o += c as f32 * inv;
            }
        }
        Compressed::TopK {
            indices, values, ..
        } => {
            for (&i, &v) in indices.iter().zip(values) {
                out[i as usize] += v;
            }
        }
    }
}

/// [`decompress_add`] wrapped in one [`cdsgd_telemetry::Op::Decompress`]
/// span on `spans` — the codec-layer "dequant" interval the server's
/// aggregation loop records when tracing is on.
pub fn decompress_add_traced(c: &Compressed, out: &mut [f32], spans: &dyn crate::CodecSpans) {
    let t = spans.now();
    decompress_add(c, out);
    spans.record(cdsgd_telemetry::Op::Decompress, t);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packing::{pack_1bit, pack_2bit};

    #[test]
    fn raw_wire_bytes() {
        assert_eq!(Compressed::Raw(vec![0.0; 10]).wire_bytes(), 4 + 40);
    }

    #[test]
    fn two_bit_wire_bytes_are_sixteenth_plus_header() {
        let c = Compressed::TwoBit {
            threshold: 0.5,
            packed: vec![0; 256],
            len: 1024,
        };
        assert_eq!(c.wire_bytes(), 4 + 4 + 256);
        // 1024 f32 = 4096 raw bytes -> 264 compressed, ~15.5x smaller.
        assert!((c.wire_bytes() as f64) < 4096.0 / 15.0);
    }

    #[test]
    fn wire_byte_accounting_is_uniform_across_variants() {
        // Every variant pays the same 4-byte length header; the pinned
        // totals below are the contract the traffic counters rely on.
        let n = 64usize;
        assert_eq!(Compressed::Raw(vec![0.0; n]).wire_bytes(), 4 + 4 * n); // 260
        let packed = vec![0u8; n.div_ceil(4)];
        assert_eq!(
            Compressed::TwoBit {
                threshold: 0.5,
                packed: packed.clone(),
                len: n
            }
            .wire_bytes(),
            4 + 4 + 16 // 24
        );
        assert_eq!(
            Compressed::Tern {
                scale: 1.0,
                packed,
                len: n
            }
            .wire_bytes(),
            4 + 4 + 16 // 24
        );
        assert_eq!(
            Compressed::OneBit {
                scale: 1.0,
                signs: vec![0u8; n.div_ceil(8)],
                len: n
            }
            .wire_bytes(),
            4 + 4 + 8 // 16
        );
        // levels = 4 -> 9 symbols -> 4 bits/code.
        assert_eq!(
            Compressed::Qsgd {
                norm: 1.0,
                levels: 4,
                codes: vec![0i8; n],
                len: n
            }
            .wire_bytes(),
            4 + 4 + 1 + 32 // 41
        );
        assert_eq!(
            Compressed::TopK {
                indices: vec![0, 1],
                values: vec![1.0, 2.0],
                len: n
            }
            .wire_bytes(),
            4 + 16 // 20
        );
    }

    #[test]
    fn recycle_feeds_the_pool() {
        let pool = BufferPool::new();
        Compressed::Raw(vec![1.0; 8]).recycle(&pool);
        Compressed::TwoBit {
            threshold: 0.5,
            packed: vec![0; 2],
            len: 8,
        }
        .recycle(&pool);
        Compressed::Qsgd {
            norm: 1.0,
            levels: 4,
            codes: vec![0; 8],
            len: 8,
        }
        .recycle(&pool);
        Compressed::TopK {
            indices: vec![0],
            values: vec![1.0],
            len: 8,
        }
        .recycle(&pool);
        // Two f32 buffers were returned (Raw payload and TopK values).
        let caps = [pool.take_f32().capacity(), pool.take_f32().capacity()];
        assert!(caps.iter().any(|&c| c >= 8), "caps {caps:?}");
        assert!(caps.iter().all(|&c| c >= 1), "caps {caps:?}");
        assert!(pool.take_bytes().capacity() >= 2);
        assert!(pool.take_i8().capacity() >= 8);
        assert!(pool.take_u32().capacity() >= 1);
    }

    #[test]
    fn decompress_two_bit_symbols() {
        let packed = pack_2bit(&[1, 2, 0, 1]);
        let c = Compressed::TwoBit {
            threshold: 0.25,
            packed,
            len: 4,
        };
        let mut out = vec![9.0; 4];
        decompress(&c, &mut out);
        assert_eq!(out, vec![0.25, -0.25, 0.0, 0.25]);
    }

    #[test]
    fn decompress_add_accumulates() {
        let packed = pack_2bit(&[1, 1]);
        let c = Compressed::TwoBit {
            threshold: 1.0,
            packed,
            len: 2,
        };
        let mut out = vec![0.5, -0.5];
        decompress_add(&c, &mut out);
        assert_eq!(out, vec![1.5, 0.5]);
    }

    #[test]
    fn decompress_one_bit() {
        let signs = pack_1bit(&[true, false, true]);
        let c = Compressed::OneBit {
            scale: 2.0,
            signs,
            len: 3,
        };
        let mut out = vec![0.0; 3];
        decompress(&c, &mut out);
        assert_eq!(out, vec![2.0, -2.0, 2.0]);
    }

    #[test]
    fn decompress_qsgd_codes() {
        let c = Compressed::Qsgd {
            norm: 4.0,
            levels: 4,
            codes: vec![4, -2, 0],
            len: 3,
        };
        let mut out = vec![0.0; 3];
        decompress(&c, &mut out);
        assert_eq!(out, vec![4.0, -2.0, 0.0]);
    }

    #[test]
    fn decompress_topk_scatter() {
        let c = Compressed::TopK {
            indices: vec![3, 0],
            values: vec![1.5, -2.5],
            len: 5,
        };
        let mut out = vec![0.0; 5];
        decompress(&c, &mut out);
        assert_eq!(out, vec![-2.5, 0.0, 0.0, 1.5, 0.0]);
        assert_eq!(c.wire_bytes(), 4 + 16);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_out_len_panics() {
        let c = Compressed::Raw(vec![1.0]);
        let mut out = vec![0.0; 2];
        decompress(&c, &mut out);
    }
}
