//! Adaptive-threshold 2-bit quantization.
//!
//! The paper notes (§2.3) that a fixed threshold is hard to choose:
//! "various models have different parameter characteristics, and it is
//! difficult to find a suitable threshold for them". This codec sets the
//! threshold *per key, per iteration* to a multiple of the mean absolute
//! residual-corrected gradient — the AdaComp-style remedy [Chen et al.
//! 2018] applied to the 2-bit scheme. Same wire format as
//! [`crate::TwoBitQuantizer`] (the threshold already travels in the
//! header).

use crate::compressed::Compressed;
use crate::packing::{pack_2bit, pack_2bit_into};
use crate::pool::BufferPool;
use crate::residual::ResidualStore;
use crate::GradientCompressor;
use cdsgd_tensor::kernel;

/// 2-bit quantizer whose threshold tracks the gradient scale:
/// `α = scale · mean(|grad + residual|)`, floored to a tiny epsilon so
/// all-zero gradients stay encodable.
#[derive(Debug, Clone)]
pub struct AdaptiveTwoBit {
    scale: f32,
    residuals: ResidualStore,
    /// Reused encode scratch (corrected gradient and symbol stream).
    corrected: Vec<f32>,
    symbols: Vec<u8>,
}

impl AdaptiveTwoBit {
    /// `scale` multiplies the mean absolute corrected gradient; ~1.0–2.0
    /// transmits the heavy tail, larger values get sparser/coarser.
    ///
    /// # Panics
    /// Panics unless `scale` is positive and finite.
    pub fn new(scale: f32) -> Self {
        assert!(
            scale > 0.0 && scale.is_finite(),
            "scale must be positive, got {scale}"
        );
        Self {
            scale,
            residuals: ResidualStore::new(),
            corrected: Vec::new(),
            symbols: Vec::new(),
        }
    }

    /// The scale multiplier.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Access the residual store (diagnostics).
    pub fn residuals(&self) -> &ResidualStore {
        &self.residuals
    }

    /// The threshold that would be used for this corrected gradient.
    fn threshold_for(corrected: &[f32], scale: f32) -> f32 {
        if corrected.is_empty() {
            return 1e-8;
        }
        let mean_abs = kernel::reduce_abs_sum(corrected) / corrected.len() as f32;
        (scale * mean_abs).max(1e-8)
    }

    /// Quantize `grad + residual` into `self.symbols`, updating the
    /// residual state; returns the adaptive threshold. Shared by both
    /// compress paths.
    fn encode_symbols(&mut self, key: usize, grad: &[f32]) -> f32 {
        let res = self.residuals.get_mut(key, grad.len());
        self.corrected.clear();
        self.corrected.resize(grad.len(), 0.0);
        kernel::add_into(&mut self.corrected, grad, res);
        let thr = Self::threshold_for(&self.corrected, self.scale);
        self.symbols.clear();
        self.symbols.resize(grad.len(), 0);
        kernel::threshold_scan_store(&self.corrected, thr, &mut self.symbols, res);
        thr
    }
}

impl GradientCompressor for AdaptiveTwoBit {
    fn compress(&mut self, key: usize, grad: &[f32]) -> Compressed {
        let thr = self.encode_symbols(key, grad);
        Compressed::TwoBit {
            threshold: thr,
            packed: pack_2bit(&self.symbols),
            len: grad.len(),
        }
    }

    fn compress_into(&mut self, key: usize, grad: &[f32], pool: &BufferPool) -> Compressed {
        let thr = self.encode_symbols(key, grad);
        let mut packed = pool.take_bytes();
        pack_2bit_into(&self.symbols, &mut packed);
        Compressed::TwoBit {
            threshold: thr,
            packed,
            len: grad.len(),
        }
    }

    fn name(&self) -> &'static str {
        "2bit-adaptive"
    }

    fn wire_bytes(&self, n: usize) -> usize {
        4 + 4 + n.div_ceil(4)
    }

    fn export_state(&self) -> Vec<(usize, Vec<f32>)> {
        self.residuals.export_state()
    }

    fn import_state(&mut self, entries: &[(usize, Vec<f32>)]) {
        self.residuals.import_state(entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressed::decompress;

    fn decode(c: &Compressed) -> Vec<f32> {
        let mut out = vec![0.0; c.len()];
        decompress(c, &mut out);
        out
    }

    #[test]
    fn threshold_tracks_gradient_scale() {
        let mut q = AdaptiveTwoBit::new(1.0);
        // Large-scale gradient: threshold ≈ mean(|g|) = 2.0; everything at
        // ±3 and ±1 relative to that.
        let c = q.compress(0, &[3.0, -3.0, 1.0, -1.0]);
        if let Compressed::TwoBit { threshold, .. } = c {
            assert!((threshold - 2.0).abs() < 1e-6, "thr {threshold}");
        } else {
            panic!("wrong variant");
        }
        // Tiny gradient on a fresh key: threshold shrinks proportionally —
        // no manual retuning needed (the paper's §2.3 pain point).
        let c = q.compress(1, &[3e-3, -3e-3, 1e-3, -1e-3]);
        if let Compressed::TwoBit { threshold, .. } = c {
            assert!((threshold - 2e-3).abs() < 1e-7, "thr {threshold}");
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn mass_conservation_with_adaptive_threshold() {
        let mut q = AdaptiveTwoBit::new(1.5);
        let rounds = [[0.4f32, -0.1, 0.8], [0.05, 0.3, -0.6], [-0.2, 0.2, 0.1]];
        let mut sent = [0.0f32; 3];
        let mut total = [0.0f32; 3];
        for g in &rounds {
            for (t, &x) in total.iter_mut().zip(g) {
                *t += x;
            }
            for (s, d) in sent.iter_mut().zip(decode(&q.compress(0, g))) {
                *s += d;
            }
        }
        let res = q.residuals().get(0).unwrap();
        for i in 0..3 {
            assert!((sent[i] + res[i] - total[i]).abs() < 1e-5);
        }
    }

    #[test]
    fn zero_gradient_encodes_to_zero() {
        let mut q = AdaptiveTwoBit::new(1.0);
        assert_eq!(decode(&q.compress(0, &[0.0; 8])), vec![0.0; 8]);
    }

    #[test]
    fn larger_scale_transmits_fewer_elements() {
        let grad: Vec<f32> = (0..128).map(|i| ((i as f32) * 0.37).sin()).collect();
        let count_fired = |scale: f32| -> usize {
            let mut q = AdaptiveTwoBit::new(scale);
            decode(&q.compress(0, &grad))
                .iter()
                .filter(|&&v| v != 0.0)
                .count()
        };
        assert!(count_fired(0.5) > count_fired(2.0));
    }

    #[test]
    fn wire_size_matches_fixed_threshold_codec() {
        let q = AdaptiveTwoBit::new(1.0);
        let fixed = crate::TwoBitQuantizer::new(0.5);
        assert_eq!(q.wire_bytes(1000), fixed.wire_bytes(1000));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_scale_rejected() {
        AdaptiveTwoBit::new(0.0);
    }
}
