//! Per-key residual (error-feedback) storage shared by the quantizers.

use std::collections::HashMap;

/// Residual buffers, one `Vec<f32>` per parameter key, lazily created at
//  first use and persisted across iterations.
///
/// This is the paper's "residual buffer" (§2.3): quantization error is
/// accumulated here and re-enters the gradient stream on later iterations,
/// which is both why 2-bit quantization loses no information in the limit
/// and why its weight updates are *delayed* — the effect CD-SGD's k-step
/// correction exists to repair.
#[derive(Debug, Default, Clone)]
pub struct ResidualStore {
    buffers: HashMap<usize, Vec<f32>>,
}

impl ResidualStore {
    /// Empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutable residual buffer for `key`, created zero-filled with length
    /// `len` on first access.
    ///
    /// # Panics
    /// Panics if `key` was previously used with a different length — a
    /// parameter tensor cannot change size mid-training.
    pub fn get_mut(&mut self, key: usize, len: usize) -> &mut [f32] {
        let buf = self.buffers.entry(key).or_insert_with(|| vec![0.0; len]);
        assert_eq!(buf.len(), len, "residual length changed for key {key}");
        buf
    }

    /// Read-only residual for `key`, if it exists yet.
    pub fn get(&self, key: usize) -> Option<&[f32]> {
        self.buffers.get(&key).map(|v| v.as_slice())
    }

    /// Sum of squared residual magnitudes across all keys (diagnostic:
    /// how much gradient signal is currently "in flight" in the buffers).
    pub fn total_sq_norm(&self) -> f64 {
        self.buffers
            .values()
            .flat_map(|v| v.iter())
            .map(|&x| (x as f64) * (x as f64))
            .sum()
    }

    /// Drop all residual state (used between experiments).
    pub fn clear(&mut self) {
        self.buffers.clear();
    }

    /// Number of keys with residual state.
    pub fn num_keys(&self) -> usize {
        self.buffers.len()
    }

    /// Snapshot every residual buffer, sorted by key so the output is
    /// deterministic (the recovery subsystem hashes checkpoint bytes).
    pub fn export_state(&self) -> Vec<(usize, Vec<f32>)> {
        let mut entries: Vec<_> = self.buffers.iter().map(|(&k, v)| (k, v.clone())).collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        entries
    }

    /// Replace all residual state with a previously exported snapshot.
    pub fn import_state(&mut self, entries: &[(usize, Vec<f32>)]) {
        self.buffers = entries.iter().cloned().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lazily_creates_zeroed_buffers() {
        let mut s = ResidualStore::new();
        assert!(s.get(3).is_none());
        assert_eq!(s.get_mut(3, 4), &[0.0; 4]);
        s.get_mut(3, 4)[2] = 1.5;
        assert_eq!(s.get(3).unwrap(), &[0.0, 0.0, 1.5, 0.0]);
        assert_eq!(s.num_keys(), 1);
    }

    #[test]
    #[should_panic(expected = "residual length changed")]
    fn length_change_panics() {
        let mut s = ResidualStore::new();
        s.get_mut(0, 4);
        s.get_mut(0, 5);
    }

    #[test]
    fn state_round_trips_through_export() {
        let mut s = ResidualStore::new();
        s.get_mut(2, 2).copy_from_slice(&[0.5, -0.25]);
        s.get_mut(0, 1)[0] = 1.5;
        let exported = s.export_state();
        // Sorted by key regardless of insertion order.
        assert_eq!(exported[0].0, 0);
        assert_eq!(exported[1].0, 2);
        let mut restored = ResidualStore::new();
        restored.get_mut(0, 1)[0] = 9.0; // stale state is replaced wholesale
        restored.import_state(&exported);
        assert_eq!(restored.get(0).unwrap(), &[1.5]);
        assert_eq!(restored.get(2).unwrap(), &[0.5, -0.25]);
        assert_eq!(restored.num_keys(), 2);
    }

    #[test]
    fn sq_norm_tracks_contents() {
        let mut s = ResidualStore::new();
        s.get_mut(0, 2).copy_from_slice(&[3.0, 4.0]);
        s.get_mut(1, 1)[0] = 2.0;
        assert!((s.total_sq_norm() - 29.0).abs() < 1e-9);
        s.clear();
        assert_eq!(s.total_sq_norm(), 0.0);
        assert_eq!(s.num_keys(), 0);
    }
}
