//! # cdsgd-telemetry
//!
//! One event model for every measurement the system makes (DESIGN.md §12).
//!
//! The paper's central claims are *measured* ones — Fig. 5's per-op
//! iteration-time breakdown and the communication-cost accounting of
//! eqs. 2 and 4–9 — so instrumentation is a first-class subsystem here,
//! not an afterthought scattered across layers. Every layer reports what
//! it observes as a typed [`Event`] through a shared [`Telemetry`]
//! handle; *where the events go* is a pluggable [`Sink`]:
//!
//! * [`NullSink`] — discard (measures the cost of the emission path).
//! * [`MemorySink`] — buffer in memory, for tests.
//! * [`JsonlSink`] — stream to a trace file, one JSON event per line.
//! * [`AggregateSink`] — fold into atomic byte/count totals (what
//!   `cdsgd_ps`'s `TrafficStats` is a view of).
//! * [`Console`] — render lifecycle events as human-readable status
//!   lines on stderr (and expose explicit stdout "contract" lines for
//!   machine-parseable output).
//!
//! Disabled telemetry is free: [`Telemetry::emit`] takes a closure, so
//! when no sink is attached the event is never even constructed — the
//! cost is one `Option` discriminant test. This is what lets the
//! bit-determinism suites run with telemetry off while production runs
//! trace every frame, without two code paths.
//!
//! This crate sits below every other `cdsgd` crate (it depends only on
//! the vendored `serde` shims), so `core`, `ps`, and the binaries can
//! all emit into the same stream.

use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// A worker-side operation category: the paper's Fig. 5 breakdown of one
/// training iteration. Span events carry one of these.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// Forward propagation.
    Forward,
    /// Backward propagation.
    Backward,
    /// Gradient quantization/encoding (the paper's "quant").
    Compress,
    /// Gradient dequantization/decoding (the server-side "dequant" —
    /// the decode half of the codec). Emitted on the server's own span
    /// lane, whose `worker` index is one past the last real worker.
    Decompress,
    /// The local update of eq. 11 (CD-SGD's delay-hiding step).
    LocalUpdate,
    /// Blocking on a parameter pull (the paper's "pull wait" — the cost
    /// eq. 2 models and compression + local updates shrink).
    PullWait,
}

impl Op {
    /// Short label used in summaries and trace tooling; matches the
    /// paper's Fig. 5 legend where one exists.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Forward => "FP",
            Op::Backward => "BP",
            Op::Compress => "quant",
            Op::Decompress => "dequant",
            Op::LocalUpdate => "local_update",
            Op::PullWait => "pull_wait",
        }
    }
}

/// One observed fact, from whichever layer observed it.
///
/// Variants use named fields only (the vendored serde derive's enum
/// support) and serialize externally tagged — `{"FrameSent":{...}}` —
/// which is what [`JsonlSink`] writes per line.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A timed worker operation: `worker` spent `[start_s, end_s]`
    /// (seconds since the run's origin) doing `op` in round `round`.
    OpSpan {
        worker: usize,
        op: Op,
        round: u64,
        start_s: f64,
        end_s: f64,
    },
    /// The server accepted a gradient push of `bytes` wire bytes
    /// (message layer; eq. 4–9's per-algorithm push volume).
    Push { bytes: u64 },
    /// The server released a pull reply of `bytes` wire bytes.
    Pull { bytes: u64 },
    /// The server materialized a weight snapshot of `bytes` bytes (a
    /// memory copy, not network traffic).
    SnapshotCopy { bytes: u64 },
    /// A transport frame of `bytes` bytes left over connection `conn`.
    FrameSent { conn: u64, bytes: u64 },
    /// A transport frame of `bytes` bytes arrived on connection `conn`.
    FrameReceived { conn: u64, bytes: u64 },
    /// One collective operation (an all-reduce or a neighbor exchange)
    /// completed: `rank` of `world` sent `payload_bytes` of payload
    /// (message layer, frame headers excluded) during the operation.
    /// The per-frame traffic behind it is visible as conn-tagged
    /// [`Event::FrameSent`]/[`Event::FrameReceived`] pairs.
    CollectiveDone {
        rank: usize,
        world: usize,
        payload_bytes: u64,
    },
    /// Round `round` of `key` received its first push and is now waiting
    /// on the remaining workers (emitted once per round, on the
    /// empty→partial transition).
    RoundPartial { key: usize, round: u64 },
    /// `key` aggregated a full round; its version is now `version`.
    RoundComplete { key: usize, version: u64 },
    /// Round `round` of `key` outlived the server's round deadline;
    /// `victim` is the worker the server named as lost.
    RoundExpired {
        key: usize,
        round: u64,
        victim: usize,
    },
    /// Supervision declared worker `id` lost in round `round`.
    WorkerLost { id: usize, round: u64 },
    /// Elastic membership: `worker` registered (or re-registered) with
    /// the server; `active` is the quorum size after admission.
    WorkerJoined { worker: usize, active: usize },
    /// Elastic membership: `worker` departed — `graceful` when it sent a
    /// Leave, false when a heartbeat timeout forced it out. `active` is
    /// the quorum size after the departure.
    WorkerLeft {
        worker: usize,
        active: usize,
        graceful: bool,
    },
    /// The server's accept/attach path rejected or failed a connection
    /// attempt instead of serving it.
    ConnRejected { reason: String },
    /// The training run aborted in `epoch` at `round` with `error`.
    Abort {
        epoch: usize,
        round: u64,
        error: String,
    },
    /// End-of-epoch rollup: the same numbers a learning-curve row holds.
    Epoch {
        epoch: usize,
        train_loss: f32,
        train_acc: f32,
        test_acc: Option<f32>,
        seconds: f64,
        push_bytes: u64,
        pull_bytes: u64,
    },
}

/// A destination for events. Implementations must be cheap and
/// non-blocking where possible: `record` runs on hot paths (per frame,
/// per span).
pub trait Sink: Send + Sync {
    /// Observe one event. Takes a reference so fan-out never clones.
    fn record(&self, event: &Event);

    /// Push any buffered output to its destination (no-op by default).
    fn flush(&self) {}
}

/// The handle every layer emits through: a cloneable
/// `Option<Arc<dyn Sink>>`.
///
/// When disabled (the default), [`Telemetry::emit`] never runs its
/// closure, so instrumented code pays only an `Option` test — no event
/// construction, no allocation, no lock.
#[derive(Clone, Default)]
pub struct Telemetry(Option<Arc<dyn Sink>>);

impl Telemetry {
    /// The no-op handle: nothing is recorded.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// A handle recording into `sink`.
    pub fn new(sink: Arc<dyn Sink>) -> Self {
        Self(Some(sink))
    }

    /// Does this handle have a sink attached?
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record the event `f` builds — but only if a sink is attached;
    /// otherwise `f` is never called.
    #[inline]
    pub fn emit(&self, f: impl FnOnce() -> Event) {
        if let Some(sink) = &self.0 {
            sink.record(&f());
        }
    }

    /// Flush the attached sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.0 {
            sink.flush();
        }
    }

    /// Combine two handles: events emitted through the result reach both
    /// sinks. Disabled sides are dropped, so `disabled().and(&t)` is
    /// just `t` (no fan-out indirection).
    pub fn and(&self, other: &Telemetry) -> Telemetry {
        match (&self.0, &other.0) {
            (None, None) => Telemetry(None),
            (Some(a), None) => Telemetry(Some(Arc::clone(a))),
            (None, Some(b)) => Telemetry(Some(Arc::clone(b))),
            (Some(a), Some(b)) => Telemetry(Some(Arc::new(FanoutSink::new(vec![
                Arc::clone(a),
                Arc::clone(b),
            ])))),
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_enabled() {
            "Telemetry(enabled)"
        } else {
            "Telemetry(disabled)"
        })
    }
}

/// Discards every event. Exists so "telemetry enabled but going
/// nowhere" is benchmarkable against "telemetry disabled".
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Fan one event stream out to several sinks, in order.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl FanoutSink {
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> Self {
        Self { sinks }
    }
}

impl Sink for FanoutSink {
    fn record(&self, event: &Event) {
        for s in &self.sinks {
            s.record(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }
}

/// Buffers every event in memory; the test-side sink.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }

    /// A copy of everything recorded so far, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Drain the buffer.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().unwrap())
    }

    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Streams events to a file, one JSON object per line (externally-tagged
/// [`Event`] encoding). The file is buffered; [`Sink::flush`] and drop
/// both force it out, so a trace is complete once the process exits
/// cleanly — binaries should still flush explicitly before printing
/// their final contract line.
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            writer: Mutex::new(BufWriter::new(File::create(path)?)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = serde_json::to_string(event).expect("Event serializes");
        let mut w = self.writer.lock().unwrap();
        // A full disk mid-trace shouldn't take the training run down
        // with it; the trace is an observer.
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Parse one [`JsonlSink`] line back into its event.
pub fn parse_jsonl_line(line: &str) -> Result<Event, serde_json::Error> {
    serde_json::from_str(line)
}

/// Folds byte-carrying events into atomic totals — the accounting the
/// paper's eq. 2/4–9 communication model is checked against. This is the
/// storage behind `cdsgd_ps`'s `TrafficStats` view, and can be attached
/// as an extra sink to derive the same totals from any event stream.
#[derive(Debug, Default)]
pub struct AggregateSink {
    bytes_pushed: AtomicU64,
    bytes_pulled: AtomicU64,
    num_pushes: AtomicU64,
    num_pulls: AtomicU64,
    bytes_copied: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
}

impl AggregateSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Total gradient bytes pushed (message layer).
    pub fn bytes_pushed(&self) -> u64 {
        self.bytes_pushed.load(Ordering::Relaxed)
    }

    /// Total weight bytes served through pulls (message layer).
    pub fn bytes_pulled(&self) -> u64 {
        self.bytes_pulled.load(Ordering::Relaxed)
    }

    /// Number of push messages.
    pub fn num_pushes(&self) -> u64 {
        self.num_pushes.load(Ordering::Relaxed)
    }

    /// Number of pull replies released.
    pub fn num_pulls(&self) -> u64 {
        self.num_pulls.load(Ordering::Relaxed)
    }

    /// Bytes copied building weight snapshots (memory, not network).
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied.load(Ordering::Relaxed)
    }

    /// Raw frame bytes sent over transports.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Raw frame bytes received over transports.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }
}

impl Sink for AggregateSink {
    fn record(&self, event: &Event) {
        match *event {
            Event::Push { bytes } => {
                self.bytes_pushed.fetch_add(bytes, Ordering::Relaxed);
                self.num_pushes.fetch_add(1, Ordering::Relaxed);
            }
            Event::Pull { bytes } => {
                self.bytes_pulled.fetch_add(bytes, Ordering::Relaxed);
                self.num_pulls.fetch_add(1, Ordering::Relaxed);
            }
            Event::SnapshotCopy { bytes } => {
                self.bytes_copied.fetch_add(bytes, Ordering::Relaxed);
            }
            Event::FrameSent { bytes, .. } => {
                self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
            }
            Event::FrameReceived { bytes, .. } => {
                self.bytes_received.fetch_add(bytes, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// The binaries' one mouthpiece, replacing scattered `println!`s.
///
/// Two channels with different contracts:
/// * **stderr** — human-facing status ([`Console::status`],
///   [`Console::error`], and lifecycle events when attached as a
///   [`Sink`]). Free-form, never parsed.
/// * **stdout** — machine-parseable contract lines
///   ([`Console::contract`]): `LISTENING <addr>`, `DONE worker <id>`,
///   `STATS ...`. Flushed eagerly, because process harnesses block on
///   them.
#[derive(Debug, Default)]
pub struct Console;

impl Console {
    pub fn new() -> Self {
        Self
    }

    /// Human-facing progress line (stderr).
    pub fn status(&self, msg: impl fmt::Display) {
        eprintln!("{msg}");
    }

    /// Human-facing error line (stderr).
    pub fn error(&self, msg: impl fmt::Display) {
        eprintln!("error: {msg}");
    }

    /// Machine-parseable line (stdout, flushed immediately so a pipe
    /// reader unblocks without waiting for process exit).
    pub fn contract(&self, msg: impl fmt::Display) {
        println!("{msg}");
        let _ = std::io::stdout().flush();
    }
}

impl Sink for Console {
    /// Render lifecycle events as status lines. Span and frame events
    /// are deliberately ignored — per-iteration output would swamp a
    /// terminal; that detail belongs in a [`JsonlSink`] trace.
    fn record(&self, event: &Event) {
        match event {
            Event::Epoch {
                epoch,
                train_loss,
                train_acc,
                test_acc,
                seconds,
                ..
            } => match test_acc {
                Some(acc) => self.status(format_args!(
                    "epoch {epoch} loss {train_loss:.6} acc {train_acc:.4} test_acc {acc:.4} ({seconds:.2}s)"
                )),
                None => self.status(format_args!(
                    "epoch {epoch} loss {train_loss:.6} acc {train_acc:.4} ({seconds:.2}s)"
                )),
            },
            Event::RoundExpired { key, round, victim } => self.status(format_args!(
                "round {round} of key {key} expired; worker {victim} presumed lost"
            )),
            Event::WorkerLost { id, round } => {
                self.status(format_args!("worker {id} lost in round {round}"))
            }
            Event::WorkerJoined { worker, active } => {
                self.status(format_args!("worker {worker} joined; {active} active"))
            }
            Event::WorkerLeft {
                worker,
                active,
                graceful,
            } => self.status(format_args!(
                "worker {worker} left{}; {active} active",
                if *graceful { "" } else { " (heartbeat timeout)" }
            )),
            Event::ConnRejected { reason } => {
                self.status(format_args!("connection rejected: {reason}"))
            }
            Event::Abort {
                epoch,
                round,
                error,
            } => self.status(format_args!(
                "training aborted in epoch {epoch} at round {round}: {error}"
            )),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(worker: usize, op: Op, start_s: f64) -> Event {
        Event::OpSpan {
            worker,
            op,
            round: 3,
            start_s,
            end_s: start_s + 0.25,
        }
    }

    #[test]
    fn disabled_emit_never_builds_the_event() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_enabled());
        tel.emit(|| unreachable!("disabled telemetry must not construct events"));
        tel.flush();
    }

    #[test]
    fn memory_sink_records_in_order() {
        let mem = Arc::new(MemorySink::new());
        let tel = Telemetry::new(mem.clone());
        assert!(tel.is_enabled());
        tel.emit(|| Event::Push { bytes: 81 });
        tel.emit(|| span(0, Op::Forward, 1.0));
        let events = mem.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0], Event::Push { bytes: 81 });
        assert_eq!(mem.take().len(), 2);
        assert!(mem.is_empty());
    }

    #[test]
    fn fanout_reaches_every_sink_and_drops_disabled_sides() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let both = Telemetry::new(a.clone()).and(&Telemetry::new(b.clone()));
        both.emit(|| Event::Pull { bytes: 17 });
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);

        let single = Telemetry::new(a.clone()).and(&Telemetry::disabled());
        single.emit(|| Event::Pull { bytes: 17 });
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1, "disabled side must not resurrect");
        assert!(!Telemetry::disabled()
            .and(&Telemetry::disabled())
            .is_enabled());
    }

    #[test]
    fn aggregate_sink_folds_byte_events() {
        let agg = AggregateSink::new();
        agg.record(&Event::Push { bytes: 81 });
        agg.record(&Event::Push { bytes: 81 });
        agg.record(&Event::Pull { bytes: 33 });
        agg.record(&Event::SnapshotCopy { bytes: 16 });
        agg.record(&Event::FrameSent { conn: 1, bytes: 21 });
        agg.record(&Event::FrameReceived { conn: 2, bytes: 33 });
        agg.record(&span(0, Op::PullWait, 0.0)); // ignored
        assert_eq!(agg.bytes_pushed(), 162);
        assert_eq!(agg.num_pushes(), 2);
        assert_eq!(agg.bytes_pulled(), 33);
        assert_eq!(agg.num_pulls(), 1);
        assert_eq!(agg.bytes_copied(), 16);
        assert_eq!(agg.bytes_sent(), 21);
        assert_eq!(agg.bytes_received(), 33);
    }

    #[test]
    fn every_event_variant_round_trips_through_json() {
        let events = vec![
            span(2, Op::Backward, 0.125),
            Event::Push { bytes: 81 },
            Event::Pull { bytes: 17 },
            Event::SnapshotCopy { bytes: 64 },
            Event::FrameSent { conn: 7, bytes: 21 },
            Event::FrameReceived { conn: 7, bytes: 33 },
            Event::CollectiveDone {
                rank: 2,
                world: 4,
                payload_bytes: 3072,
            },
            Event::RoundPartial { key: 1, round: 4 },
            Event::RoundComplete { key: 1, version: 5 },
            Event::RoundExpired {
                key: 0,
                round: 9,
                victim: 1,
            },
            Event::WorkerLost { id: 1, round: 9 },
            Event::WorkerJoined {
                worker: 3,
                active: 4,
            },
            Event::WorkerLeft {
                worker: 3,
                active: 3,
                graceful: true,
            },
            Event::WorkerLeft {
                worker: 1,
                active: 2,
                graceful: false,
            },
            Event::ConnRejected {
                reason: "handshake failed".into(),
            },
            Event::Abort {
                epoch: 2,
                round: 9,
                error: "worker 1 lost".into(),
            },
            Event::Epoch {
                epoch: 0,
                train_loss: 0.5,
                train_acc: 0.75,
                test_acc: Some(0.8),
                seconds: 1.5,
                push_bytes: 1000,
                pull_bytes: 2000,
            },
            Event::Epoch {
                epoch: 1,
                train_loss: 0.25,
                train_acc: 0.875,
                test_acc: None,
                seconds: 1.25,
                push_bytes: 1,
                pull_bytes: 2,
            },
        ];
        for e in events {
            let line = serde_json::to_string(&e).unwrap();
            assert_eq!(parse_jsonl_line(&line).unwrap(), e, "line: {line}");
        }
    }

    #[test]
    fn jsonl_sink_writes_one_parseable_event_per_line() {
        let path = std::env::temp_dir().join(format!("cdsgd_tel_{}.jsonl", std::process::id()));
        {
            let sink = JsonlSink::create(&path).unwrap();
            sink.record(&Event::FrameSent { conn: 1, bytes: 81 });
            sink.record(&span(0, Op::Compress, 2.0));
            // Drop flushes.
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            parse_jsonl_line(lines[0]).unwrap(),
            Event::FrameSent { conn: 1, bytes: 81 }
        );
        assert_eq!(
            parse_jsonl_line(lines[1]).unwrap(),
            span(0, Op::Compress, 2.0)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn op_names_match_the_paper_legend() {
        assert_eq!(Op::Forward.name(), "FP");
        assert_eq!(Op::Backward.name(), "BP");
        assert_eq!(Op::Compress.name(), "quant");
        assert_eq!(Op::Decompress.name(), "dequant");
        assert_eq!(Op::LocalUpdate.name(), "local_update");
        assert_eq!(Op::PullWait.name(), "pull_wait");
    }

    #[test]
    fn console_ignores_high_rate_events() {
        // Smoke: rendering must not panic, and span/frame events are
        // skipped (nothing observable to assert on stderr; this pins the
        // match arms compile and run).
        let console = Console::new();
        console.record(&span(0, Op::Forward, 0.0));
        console.record(&Event::FrameSent { conn: 1, bytes: 1 });
        console.record(&Event::Epoch {
            epoch: 0,
            train_loss: 1.0,
            train_acc: 0.5,
            test_acc: Some(0.5),
            seconds: 0.1,
            push_bytes: 0,
            pull_bytes: 0,
        });
    }
}
