//! Bit-identity gates for the kernel layer: every dispatched primitive
//! must produce byte-for-byte the same output as its scalar reference,
//! for empty inputs, length 1, non-multiple-of-lane-width tails, and
//! NaN/Inf/-0.0 payloads. On AVX2 hardware the dispatched path is the
//! SIMD backend, so these tests are the per-kernel half of the
//! bit-identity contract (the end-to-end half is the pinned weight
//! hashes in `tests/strategy_equivalence.rs`).

use cdsgd_tensor::kernel::{self, scalar};
use proptest::prelude::*;

const SPECIALS: [f32; 8] = [
    f32::NAN,
    f32::INFINITY,
    f32::NEG_INFINITY,
    -0.0,
    0.0,
    f32::MIN_POSITIVE,
    1e30,
    -1e30,
];

/// Deterministic fill: mixes ordinary values with exact zeros (to
/// exercise the GEMM zero-skip) and, when asked, NaN/Inf specials.
fn fill(seed: u64, len: usize, with_specials: bool) -> Vec<f32> {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            match s % 16 {
                0 => 0.0,
                1 if with_specials => SPECIALS[(s >> 8) as usize % SPECIALS.len()],
                _ => ((s >> 16) as i32 % 1000) as f32 / 37.0,
            }
        })
        .collect()
}

fn fill_bytes(seed: u64, len: usize) -> Vec<u8> {
    let mut s = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(7);
    (0..len)
        .map(|_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s >> 24) as u8
        })
        .collect()
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: bit mismatch at {i}: {g:?} vs {w:?}"
        );
    }
}

/// Lengths that pin down the edge cases: empty, single element, one
/// short of / exactly / one past each vector width boundary.
const EDGE_LENS: [usize; 10] = [0, 1, 3, 7, 8, 9, 15, 31, 32, 33];

proptest! {
    #[test]
    fn axpy_identity(seed in 0u64..5000, len in 0usize..70, alpha in -4.0f32..4.0) {
        let x = fill(seed, len, true);
        let mut a = fill(seed + 1, len, true);
        let mut b = a.clone();
        kernel::axpy(alpha, &x, &mut a);
        scalar::axpy(alpha, &x, &mut b);
        assert_bits_eq(&a, &b, "axpy");
    }

    #[test]
    fn scale_identity(seed in 0u64..5000, len in 0usize..70, s in -4.0f32..4.0) {
        let mut a = fill(seed, len, true);
        let mut b = a.clone();
        kernel::scale(&mut a, s);
        scalar::scale(&mut b, s);
        assert_bits_eq(&a, &b, "scale");
    }

    #[test]
    fn add_assign_identity(seed in 0u64..5000, len in 0usize..70) {
        let x = fill(seed, len, true);
        let mut a = fill(seed + 1, len, true);
        let mut b = a.clone();
        kernel::add_assign(&mut a, &x);
        scalar::add_assign(&mut b, &x);
        assert_bits_eq(&a, &b, "add_assign");
    }

    #[test]
    fn add_scalar_identity(seed in 0u64..5000, len in 0usize..70, c in -4.0f32..4.0) {
        let mut a = fill(seed, len, true);
        let mut b = a.clone();
        kernel::add_scalar(&mut a, c);
        scalar::add_scalar(&mut b, c);
        assert_bits_eq(&a, &b, "add_scalar");
    }

    #[test]
    fn add_into_identity(seed in 0u64..5000, len in 0usize..70) {
        let x = fill(seed, len, true);
        let y = fill(seed + 1, len, true);
        let mut a = vec![0.0; len];
        let mut b = vec![0.0; len];
        kernel::add_into(&mut a, &x, &y);
        scalar::add_into(&mut b, &x, &y);
        assert_bits_eq(&a, &b, "add_into");
    }

    #[test]
    fn scale_add_identity(seed in 0u64..5000, len in 0usize..70, alpha in -4.0f32..4.0) {
        let x = fill(seed, len, true);
        let y = fill(seed + 1, len, true);
        let mut a = vec![0.0; len];
        let mut b = vec![0.0; len];
        kernel::scale_add(&mut a, &x, alpha, &y);
        scalar::scale_add(&mut b, &x, alpha, &y);
        assert_bits_eq(&a, &b, "scale_add");
    }

    #[test]
    fn sgd_step_identity(seed in 0u64..5000, len in 0usize..70, step in 0.0f32..2.0) {
        let w = fill(seed, len, true);
        let g = fill(seed + 1, len, true);
        let mut a = vec![0.0; len];
        let mut b = vec![0.0; len];
        kernel::sgd_step(&mut a, &w, &g, step);
        scalar::sgd_step(&mut b, &w, &g, step);
        assert_bits_eq(&a, &b, "sgd_step");
    }

    #[test]
    fn decay_add_identity(seed in 0u64..5000, len in 0usize..70, mu in 0.0f32..1.0) {
        let g = fill(seed, len, true);
        let mut a = fill(seed + 1, len, true);
        let mut b = a.clone();
        kernel::decay_add(&mut a, mu, &g);
        scalar::decay_add(&mut b, mu, &g);
        assert_bits_eq(&a, &b, "decay_add");
    }

    #[test]
    fn nesterov_step_identity(
        seed in 0u64..5000, len in 0usize..70, step in 0.0f32..2.0, mu in 0.0f32..1.0,
    ) {
        let w = fill(seed, len, true);
        let g = fill(seed + 1, len, true);
        let v = fill(seed + 2, len, true);
        let mut a = vec![0.0; len];
        let mut b = vec![0.0; len];
        kernel::nesterov_step(&mut a, &w, &g, &v, step, mu);
        scalar::nesterov_step(&mut b, &w, &g, &v, step, mu);
        assert_bits_eq(&a, &b, "nesterov_step");
    }

    #[test]
    fn dot_identity(seed in 0u64..5000, len in 0usize..70) {
        let a = fill(seed, len, true);
        let b = fill(seed + 1, len, true);
        assert_eq!(
            kernel::dot(&a, &b).to_bits(),
            scalar::dot(&a, &b).to_bits(),
            "dot"
        );
    }

    #[test]
    fn reduce_max_abs_identity(seed in 0u64..5000, len in 0usize..70) {
        let x = fill(seed, len, true);
        assert_eq!(
            kernel::reduce_max_abs(&x).to_bits(),
            scalar::reduce_max_abs(&x).to_bits(),
            "reduce_max_abs"
        );
    }

    #[test]
    fn gemm_identity(seed in 0u64..2000, m in 1usize..7, k in 1usize..9, n in 1usize..40) {
        let a = fill(seed, m * k, false);
        let b = fill(seed + 1, k * n, false);
        let mut c1 = fill(seed + 2, m * n, false);
        let mut c2 = c1.clone();
        kernel::gemm(&a, &b, &mut c1, m, k, n);
        scalar::gemm_block(&a, &b, 0..m, &mut c2, k, n);
        assert_bits_eq(&c1, &c2, "gemm");
    }

    #[test]
    fn gemm_nt_identity(seed in 0u64..2000, m in 1usize..7, k in 1usize..20, n in 1usize..20) {
        let a = fill(seed, m * k, false);
        let b = fill(seed + 1, n * k, false);
        let mut c1 = fill(seed + 2, m * n, false);
        let mut c2 = c1.clone();
        kernel::gemm_nt(&a, &b, &mut c1, m, k, n);
        scalar::gemm_nt_block(&a, &b, 0..m, &mut c2, k, n);
        assert_bits_eq(&c1, &c2, "gemm_nt");
    }

    #[test]
    fn gemm_tn_identity(seed in 0u64..2000, m in 1usize..7, k in 1usize..9, n in 1usize..40) {
        let a = fill(seed, k * m, false);
        let b = fill(seed + 1, k * n, false);
        let mut c1 = fill(seed + 2, m * n, false);
        let mut c2 = c1.clone();
        kernel::gemm_tn(&a, &b, &mut c1, m, k, n);
        scalar::gemm_tn_block(&a, &b, 0..m, &mut c2, m, k, n);
        assert_bits_eq(&c1, &c2, "gemm_tn");
    }

    #[test]
    fn pack_2bit_identity(seed in 0u64..5000, len in 0usize..140) {
        // Contract: symbols are 2-bit codes 0..=3.
        let symbols: Vec<u8> = fill_bytes(seed, len).iter().map(|&b| b & 0b11).collect();
        let mut a = vec![0xAAu8; len.div_ceil(4)];
        let mut b = vec![0x55u8; len.div_ceil(4)];
        kernel::pack_2bit(&symbols, &mut a);
        scalar::pack_2bit(&symbols, &mut b);
        assert_eq!(a, b, "pack_2bit");
    }

    #[test]
    fn unpack_2bit_identity(seed in 0u64..5000, len in 0usize..140) {
        let bytes = fill_bytes(seed, len.div_ceil(4));
        let mut a = vec![0u8; len];
        let mut b = vec![0u8; len];
        kernel::unpack_2bit(&bytes, &mut a);
        scalar::unpack_2bit(&bytes, &mut b);
        assert_eq!(a, b, "unpack_2bit");
    }

    #[test]
    fn pack_1bit_identity(seed in 0u64..5000, len in 0usize..300) {
        let bits: Vec<bool> = fill_bytes(seed, len).iter().map(|&b| b & 1 == 1).collect();
        let mut a = vec![0xAAu8; len.div_ceil(8)];
        let mut b = vec![0x55u8; len.div_ceil(8)];
        kernel::pack_1bit(&bits, &mut a);
        scalar::pack_1bit(&bits, &mut b);
        assert_eq!(a, b, "pack_1bit");
    }

    #[test]
    fn unpack_1bit_identity(seed in 0u64..5000, len in 0usize..300) {
        let bytes = fill_bytes(seed, len.div_ceil(8));
        let mut a = vec![false; len];
        let mut b = vec![false; len];
        kernel::unpack_1bit(&bytes, &mut a);
        scalar::unpack_1bit(&bytes, &mut b);
        assert_eq!(a, b, "unpack_1bit");
    }

    #[test]
    fn threshold_scan_residual_identity(seed in 0u64..5000, len in 0usize..70, thr in 0.001f32..1.0) {
        let grad = fill(seed, len, true);
        let mut res_a = fill(seed + 1, len, true);
        let mut res_b = res_a.clone();
        let mut sym_a = vec![9u8; len];
        let mut sym_b = vec![7u8; len];
        kernel::threshold_scan_residual(&grad, thr, &mut sym_a, &mut res_a);
        scalar::threshold_scan_residual(&grad, thr, &mut sym_b, &mut res_b);
        assert_eq!(sym_a, sym_b, "threshold_scan_residual symbols");
        assert_bits_eq(&res_a, &res_b, "threshold_scan_residual residuals");
    }

    #[test]
    fn threshold_scan_store_identity(seed in 0u64..5000, len in 0usize..70, thr in 0.001f32..1.0) {
        let corrected = fill(seed, len, true);
        let mut res_a = fill(seed + 1, len, true);
        let mut res_b = res_a.clone();
        let mut sym_a = vec![9u8; len];
        let mut sym_b = vec![7u8; len];
        kernel::threshold_scan_store(&corrected, thr, &mut sym_a, &mut res_a);
        scalar::threshold_scan_store(&corrected, thr, &mut sym_b, &mut res_b);
        assert_eq!(sym_a, sym_b, "threshold_scan_store symbols");
        assert_bits_eq(&res_a, &res_b, "threshold_scan_store residuals");
    }

    #[test]
    fn threshold_scan_plain_identity(seed in 0u64..5000, len in 0usize..70, thr in 0.001f32..1.0) {
        let grad = fill(seed, len, true);
        let mut sym_a = vec![9u8; len];
        let mut sym_b = vec![7u8; len];
        kernel::threshold_scan_plain(&grad, thr, &mut sym_a);
        scalar::threshold_scan_plain(&grad, thr, &mut sym_b);
        assert_eq!(sym_a, sym_b, "threshold_scan_plain");
    }

    #[test]
    fn sign_residual_identity(seed in 0u64..5000, len in 0usize..70, s in 0.001f32..2.0) {
        let corrected = fill(seed, len, true);
        let mut res_a = fill(seed + 1, len, true);
        let mut res_b = res_a.clone();
        let mut bits_a = vec![true; len];
        let mut bits_b = vec![false; len];
        kernel::sign_residual(&corrected, s, &mut bits_a, &mut res_a);
        scalar::sign_residual(&corrected, s, &mut bits_b, &mut res_b);
        assert_eq!(bits_a, bits_b, "sign_residual bits");
        assert_bits_eq(&res_a, &res_b, "sign_residual residuals");
    }

    #[test]
    fn unpack_2bit_add_identity(seed in 0u64..5000, len in 0usize..140, thr in 0.001f32..1.0) {
        let packed = fill_bytes(seed, len.div_ceil(4));
        let mut a = fill(seed + 1, len, true);
        let mut b = a.clone();
        kernel::unpack_2bit_add(&packed, thr, &mut a);
        scalar::unpack_2bit_add(&packed, thr, &mut b);
        assert_bits_eq(&a, &b, "unpack_2bit_add");
    }

    #[test]
    fn unpack_1bit_add_identity(seed in 0u64..5000, len in 0usize..300, s in 0.001f32..2.0) {
        let signs = fill_bytes(seed, len.div_ceil(8));
        let mut a = fill(seed + 1, len, true);
        let mut b = a.clone();
        kernel::unpack_1bit_add(&signs, s, &mut a);
        scalar::unpack_1bit_add(&signs, s, &mut b);
        assert_bits_eq(&a, &b, "unpack_1bit_add");
    }
}

/// Pin the exact boundary lengths (empty, 1, ±1 around the 8/32 lane
/// multiples) that random lengths only hit probabilistically.
#[test]
fn edge_lengths_elementwise() {
    for &len in &EDGE_LENS {
        let x = fill(len as u64 + 11, len, true);
        let mut a = fill(len as u64 + 13, len, true);
        let mut b = a.clone();
        kernel::axpy(1.5, &x, &mut a);
        scalar::axpy(1.5, &x, &mut b);
        assert_bits_eq(&a, &b, "axpy edge");

        assert_eq!(
            kernel::dot(&x, &a).to_bits(),
            scalar::dot(&x, &a).to_bits(),
            "dot edge len {len}"
        );

        let syms: Vec<u8> = fill_bytes(len as u64, len)
            .iter()
            .map(|&b| b & 0b11)
            .collect();
        let mut pa = vec![1u8; len.div_ceil(4)];
        let mut pb = vec![2u8; len.div_ceil(4)];
        kernel::pack_2bit(&syms, &mut pa);
        scalar::pack_2bit(&syms, &mut pb);
        assert_eq!(pa, pb, "pack_2bit edge len {len}");
    }
}

/// Exercise the rayon-tiled paths: sizes above `CDSGD_PAR_THRESHOLD`
/// (default 65536) must still be bit-identical — tiles are independent
/// output ranges, so threading cannot reassociate anything.
#[test]
fn large_tiled_elementwise_identity() {
    let n = 200_000;
    let x = fill(3, n, true);
    let mut a = fill(4, n, true);
    let mut b = a.clone();
    kernel::axpy(-0.75, &x, &mut a);
    scalar::axpy(-0.75, &x, &mut b);
    assert_bits_eq(&a, &b, "axpy large");

    let mut a2 = vec![0.0; n];
    let mut b2 = vec![0.0; n];
    kernel::sgd_step(&mut a2, &x, &a, 0.1);
    scalar::sgd_step(&mut b2, &x, &b, 0.1);
    assert_bits_eq(&a2, &b2, "sgd_step large");
}

#[test]
fn large_parallel_gemm_identity() {
    let (m, k, n) = (64, 64, 64); // 256 Ki flops > default threshold
    let a = fill(5, m * k, false);
    let b = fill(6, k * n, false);
    let mut c1 = vec![0.0; m * n];
    let mut c2 = vec![0.0; m * n];
    kernel::gemm(&a, &b, &mut c1, m, k, n);
    scalar::gemm_block(&a, &b, 0..m, &mut c2, k, n);
    assert_bits_eq(&c1, &c2, "gemm large");

    let mut c3 = vec![0.0; m * n];
    let mut c4 = vec![0.0; m * n];
    kernel::gemm_nt(&a, &b, &mut c3, m, k, n);
    scalar::gemm_nt_block(&a, &b, 0..m, &mut c4, k, n);
    assert_bits_eq(&c3, &c4, "gemm_nt large");

    let mut c5 = vec![0.0; m * n];
    let mut c6 = vec![0.0; m * n];
    kernel::gemm_tn(&a, &b, &mut c5, m, k, n);
    scalar::gemm_tn_block(&a, &b, 0..m, &mut c6, m, k, n);
    assert_bits_eq(&c5, &c6, "gemm_tn large");
}

#[test]
fn backend_reports_and_env_is_documented() {
    // On the CI hosts this is Avx2; on non-x86 it must be Scalar. Either
    // way the name is stable for trace/bench output.
    let b = kernel::backend();
    assert!(matches!(b.name(), "scalar" | "avx2"));
}
