//! Property-based tests for the tensor substrate: algebraic identities that
//! must hold for arbitrary shapes and data.

use cdsgd_tensor::{col2im, contiguous_strides, im2col, numel, Conv2dGeom, SmallRng64, Tensor};
use proptest::prelude::*;

fn small_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-100.0f32..100.0, 1..max_len)
}

proptest! {
    #[test]
    fn add_commutes(v in small_vec(64)) {
        let n = v.len();
        let a = Tensor::from_vec(vec![n], v.clone());
        let b = Tensor::from_vec(vec![n], v.iter().map(|x| x * 0.5 - 1.0).collect());
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn sub_then_add_round_trips(v in small_vec(64)) {
        let n = v.len();
        let a = Tensor::from_vec(vec![n], v.clone());
        let b = Tensor::from_vec(vec![n], v.iter().map(|x| x * 0.25 + 2.0).collect());
        let back = a.sub(&b).add(&b);
        for (x, y) in back.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn axpy_equals_scale_add(v in small_vec(64), alpha in -4.0f32..4.0) {
        let n = v.len();
        let x = Tensor::from_vec(vec![n], v.clone());
        let mut y = Tensor::from_vec(vec![n], v.iter().map(|a| a + 1.0).collect());
        let expect = y.add(&x.scale(alpha));
        y.axpy(alpha, &x);
        for (a, b) in y.data().iter().zip(expect.data()) {
            prop_assert!((a - b).abs() < 1e-3 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn norm_is_scale_homogeneous(v in small_vec(64), s in -3.0f32..3.0) {
        let n = v.len();
        let a = Tensor::from_vec(vec![n], v);
        let lhs = a.scale(s).norm();
        let rhs = s.abs() * a.norm();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + rhs));
    }

    #[test]
    fn reshape_preserves_data(r in 1usize..8, c in 1usize..8) {
        let t = Tensor::from_vec(vec![r, c], (0..r * c).map(|x| x as f32).collect());
        let flat = t.clone().reshape(vec![r * c]);
        prop_assert_eq!(t.data(), flat.data());
    }

    #[test]
    fn strides_dot_shape_contract(dims in prop::collection::vec(1usize..6, 1..4)) {
        let strides = contiguous_strides(&dims);
        // Last stride is 1; stride[i] == stride[i+1] * dim[i+1].
        prop_assert_eq!(*strides.last().unwrap(), 1);
        for i in 0..dims.len() - 1 {
            prop_assert_eq!(strides[i], strides[i + 1] * dims[i + 1]);
        }
        prop_assert_eq!(strides[0] * dims[0], numel(&dims));
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..1000) {
        let mut rng = SmallRng64::new(seed);
        let a = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let b = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let c = Tensor::randn(&[6, 5], 1.0, &mut rng);
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn transpose_reverses_matmul(seed in 0u64..1000) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let mut rng = SmallRng64::new(seed);
        let a = Tensor::randn(&[3, 7], 1.0, &mut rng);
        let b = Tensor::randn(&[7, 4], 1.0, &mut rng);
        let lhs = a.matmul(&b).transpose2d();
        let rhs = b.transpose2d().matmul(&a.transpose2d());
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        seed in 0u64..500,
        c in 1usize..3,
        hw in 3usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let g = Conv2dGeom { c, h: hw, w: hw, kh: k, kw: k, stride, pad };
        let mut rng = SmallRng64::new(seed);
        let x = Tensor::randn(&[c * hw * hw], 1.0, &mut rng);
        let y = Tensor::randn(&[g.col_rows(), g.col_cols()], 1.0, &mut rng);
        let lhs: f32 = im2col(x.data(), &g).data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let mut back = vec![0.0f32; x.len()];
        col2im(&y, &g, &mut back);
        let rhs: f32 = x.data().iter().zip(&back).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn softmax_rows_is_probability_distribution(r in 1usize..6, c in 1usize..6, seed in 0u64..100) {
        let mut rng = SmallRng64::new(seed);
        let t = Tensor::randn(&[r, c], 5.0, &mut rng);
        let s = t.softmax_rows();
        for row in s.data().chunks_exact(c) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}
