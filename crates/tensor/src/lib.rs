//! # cdsgd-tensor
//!
//! A small, self-contained N-dimensional `f32` tensor library that provides
//! exactly the math kernels the CD-SGD reproduction needs: blocked and
//! rayon-parallel matrix multiplication, im2col-based convolution kernels,
//! elementwise arithmetic, reductions, and seeded random initialization.
//!
//! The library is deliberately minimal — it is the substrate standing in for
//! MXNet's NDArray engine in the paper's stack (see `DESIGN.md` §2). All
//! storage is a contiguous row-major `Vec<f32>`; no views or broadcasting
//! machinery beyond what the NN layers require.
//!
//! ## Quick example
//!
//! ```
//! use cdsgd_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
//! let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
//! let c = a.matmul(&b);
//! assert_eq!(c.shape(), &[2, 2]);
//! assert_eq!(c.data(), &[58., 64., 139., 154.]);
//! ```

mod conv;
pub mod kernel;
mod matmul;
mod ops;
mod reduce;
mod rng;
mod shape;
mod tensor;

pub use conv::{col2im, im2col, Conv2dGeom};
pub use rng::{he_std, xavier_std, SmallRng64};
pub use shape::{contiguous_strides, numel, Shape};
pub use tensor::Tensor;
