//! Seeded random number generation and weight-initialization helpers.
//!
//! We use a tiny splitmix64/xoshiro-style generator rather than threading
//! `rand`'s trait machinery through every math kernel: experiments must be
//! bit-reproducible across runs and across the 2/4/8-worker configurations,
//! and a self-contained u64 state makes per-worker seeding trivial.
//! (`rand` is still used at the API edges — dataset shuffling — where trait
//! compatibility matters.)

/// A small, fast, seedable PRNG (xorshift64* core with splitmix64 seeding).
///
/// Statistically good enough for weight init, synthetic data and dropout
/// masks; *not* cryptographic.
#[derive(Clone, Debug)]
pub struct SmallRng64 {
    state: u64,
    /// Cached second output of the Box-Muller transform.
    spare_gauss: Option<f32>,
}

impl SmallRng64 {
    /// Create a generator from a seed. Distinct seeds (including 0) give
    /// distinct, well-mixed streams.
    pub fn new(seed: u64) -> Self {
        // splitmix64 step so that small/sequential seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Self {
            state: z | 1,
            spare_gauss: None,
        }
    }

    /// Derive an independent child generator (e.g. one per worker).
    pub fn fork(&mut self, stream: u64) -> Self {
        let base = self.next_u64();
        Self::new(base ^ stream.wrapping_mul(0xA076_1D64_78BD_642F))
    }

    /// Next raw 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform `f32` in `[0, 1)`.
    #[inline]
    pub fn unit_f32(&mut self) -> f32 {
        // Use the top 24 bits for a uniformly spaced mantissa.
        (self.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        (self.next_u64() % n as u64) as usize
    }

    /// Standard normal sample via Box-Muller (with spare caching).
    pub fn gauss(&mut self) -> f32 {
        if let Some(g) = self.spare_gauss.take() {
            return g;
        }
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.unit_f32().max(1e-12);
        let u2 = self.unit_f32();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_gauss = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

/// Xavier/Glorot initialization standard deviation for a layer with the
/// given fan-in and fan-out.
pub fn xavier_std(fan_in: usize, fan_out: usize) -> f32 {
    (2.0 / (fan_in + fan_out) as f32).sqrt()
}

/// He/Kaiming initialization standard deviation (ReLU networks).
pub fn he_std(fan_in: usize) -> f32 {
    (2.0 / fan_in as f32).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng64::new(7);
        let mut b = SmallRng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng64::new(1);
        let mut b = SmallRng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forked_streams_diverge_from_parent() {
        let mut parent = SmallRng64::new(3);
        let mut child = parent.fork(0);
        let mut child2 = parent.fork(1);
        let c1: Vec<u64> = (0..16).map(|_| child.next_u64()).collect();
        let c2: Vec<u64> = (0..16).map(|_| child2.next_u64()).collect();
        assert_ne!(c1, c2);
    }

    #[test]
    fn unit_f32_in_range() {
        let mut r = SmallRng64::new(11);
        for _ in 0..10_000 {
            let u = r.unit_f32();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gauss_moments_roughly_standard() {
        let mut r = SmallRng64::new(13);
        let n = 50_000;
        let samples: Vec<f32> = (0..n).map(|_| r.gauss()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn below_covers_all_buckets() {
        let mut r = SmallRng64::new(5);
        let mut seen = [0usize; 10];
        for _ in 0..10_000 {
            seen[r.below(10)] += 1;
        }
        assert!(seen.iter().all(|&c| c > 500), "buckets {seen:?}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SmallRng64::new(17);
        let mut xs: Vec<usize> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            xs,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn init_stds() {
        assert!((xavier_std(100, 100) - 0.1).abs() < 1e-6);
        assert!((he_std(200) - 0.1).abs() < 1e-6);
    }
}
