//! The [`Tensor`] type: contiguous row-major `f32` storage plus a shape.

use crate::rng::SmallRng64;
use crate::shape::{contiguous_strides, linear_index, numel, Shape};

/// A dense N-dimensional `f32` tensor with contiguous row-major storage.
///
/// This is the only storage type in the library. It is cheap to construct,
/// sendable across threads, and exposes its backing slice directly so the
/// compression codecs and parameter-server can treat parameters/gradients as
/// flat `&[f32]` without copies.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Build a tensor from a shape and backing data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape's element count.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            numel(&shape),
            data.len(),
            "shape {:?} needs {} elements, got {}",
            shape,
            numel(&shape),
            data.len()
        );
        Self { shape, data }
    }

    /// An all-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; numel(shape)],
        }
    }

    /// An all-ones tensor of the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        Self {
            shape: shape.to_vec(),
            data: vec![value; numel(shape)],
        }
    }

    /// A tensor of i.i.d. samples from `N(0, std^2)` drawn from `rng`.
    pub fn randn(shape: &[usize], std: f32, rng: &mut SmallRng64) -> Self {
        let n = numel(shape);
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(rng.gauss() * std);
        }
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// A tensor of i.i.d. samples from `U(lo, hi)`.
    pub fn rand_uniform(shape: &[usize], lo: f32, hi: f32, rng: &mut SmallRng64) -> Self {
        let n = numel(shape);
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            data.push(lo + (hi - lo) * rng.unit_f32());
        }
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape (dimension sizes, outermost first).
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Row-major strides of the (contiguous) storage.
    pub fn strides(&self) -> Vec<usize> {
        contiguous_strides(&self.shape)
    }

    /// Immutable view of the backing storage.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing storage.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its backing storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element access by multi-dimensional index.
    #[inline]
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[linear_index(&self.shape, idx)]
    }

    /// Mutable element access by multi-dimensional index.
    #[inline]
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        &mut self.data[linear_index(&self.shape, idx)]
    }

    /// Reinterpret the tensor with a new shape of equal element count.
    ///
    /// A single `0` entry is inferred from the remaining dimensions
    /// (like NumPy's `-1`).
    ///
    /// # Panics
    /// Panics if the element counts cannot be made to match.
    pub fn reshape(mut self, mut new_shape: Shape) -> Self {
        let holes = new_shape.iter().filter(|&&d| d == 0).count();
        assert!(holes <= 1, "at most one inferred (0) dimension allowed");
        if holes == 1 {
            let known: usize = new_shape.iter().filter(|&&d| d != 0).product();
            assert!(
                known > 0 && self.data.len().is_multiple_of(known),
                "cannot infer dimension"
            );
            for d in new_shape.iter_mut() {
                if *d == 0 {
                    *d = self.data.len() / known;
                }
            }
        }
        assert_eq!(
            numel(&new_shape),
            self.data.len(),
            "reshape must preserve element count"
        );
        self.shape = new_shape;
        self
    }

    /// Transpose a 2-D tensor (allocates).
    ///
    /// # Panics
    /// Panics if the tensor is not 2-D.
    pub fn transpose2d(&self) -> Self {
        assert_eq!(self.ndim(), 2, "transpose2d requires a matrix");
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = self.data[i * c + j];
            }
        }
        Self {
            shape: vec![c, r],
            data: out,
        }
    }

    /// Copy of row `i` of a 2-D tensor as a new 1-D tensor.
    pub fn row(&self, i: usize) -> Self {
        assert_eq!(self.ndim(), 2, "row() requires a matrix");
        let c = self.shape[1];
        Self {
            shape: vec![c],
            data: self.data[i * c..(i + 1) * c].to_vec(),
        }
    }

    /// Stack 1-D/row tensors of identical length into a 2-D tensor.
    pub fn stack_rows(rows: &[Tensor]) -> Self {
        assert!(!rows.is_empty(), "cannot stack zero rows");
        let c = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * c);
        for r in rows {
            assert_eq!(r.len(), c, "all stacked rows must have equal length");
            data.extend_from_slice(r.data());
        }
        Self {
            shape: vec![rows.len(), c],
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let z = Tensor::zeros(&[2, 2]);
        assert_eq!(z.data(), &[0.0; 4]);
        let o = Tensor::ones(&[3]);
        assert_eq!(o.data(), &[1.0; 3]);
        let f = Tensor::full(&[2], 2.5);
        assert_eq!(f.data(), &[2.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn from_vec_len_mismatch_panics() {
        Tensor::from_vec(vec![2, 2], vec![1.0; 3]);
    }

    #[test]
    fn at_and_at_mut() {
        let mut t = Tensor::zeros(&[2, 3]);
        *t.at_mut(&[1, 2]) = 7.0;
        assert_eq!(t.at(&[1, 2]), 7.0);
        assert_eq!(t.data()[5], 7.0);
    }

    #[test]
    fn reshape_with_inferred_dim() {
        let t = Tensor::zeros(&[4, 6]).reshape(vec![2, 0]);
        assert_eq!(t.shape(), &[2, 12]);
        let t = t.reshape(vec![0]);
        assert_eq!(t.shape(), &[24]);
    }

    #[test]
    #[should_panic(expected = "preserve element count")]
    fn reshape_bad_count_panics() {
        Tensor::zeros(&[4]).reshape(vec![3]);
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor::from_vec(vec![2, 3], (0..6).map(|x| x as f32).collect());
        let tt = t.transpose2d();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), t.at(&[1, 2]));
        assert_eq!(tt.transpose2d(), t);
    }

    #[test]
    fn randn_is_seed_deterministic() {
        let mut r1 = SmallRng64::new(42);
        let mut r2 = SmallRng64::new(42);
        let a = Tensor::randn(&[16], 1.0, &mut r1);
        let b = Tensor::randn(&[16], 1.0, &mut r2);
        assert_eq!(a, b);
    }

    #[test]
    fn stack_rows_round_trip() {
        let rows: Vec<Tensor> = (0..3).map(|i| Tensor::full(&[4], i as f32)).collect();
        let m = Tensor::stack_rows(&rows);
        assert_eq!(m.shape(), &[3, 4]);
        for i in 0..3 {
            assert_eq!(m.row(i).data(), Tensor::full(&[4], i as f32).data());
        }
    }
}
