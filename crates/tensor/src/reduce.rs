//! Reductions and row-wise helpers used by losses and metrics.

use crate::kernel;
use crate::tensor::Tensor;

impl Tensor {
    /// Argmax of each row of a 2-D tensor. Ties resolve to the lowest index.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2, "argmax_rows requires a matrix");
        let cols = self.shape()[1];
        assert!(cols > 0, "argmax of empty rows");
        self.data()
            .chunks_exact(cols)
            .map(|row| {
                let mut best = 0usize;
                let mut best_v = row[0];
                for (j, &v) in row.iter().enumerate().skip(1) {
                    if v > best_v {
                        best = j;
                        best_v = v;
                    }
                }
                best
            })
            .collect()
    }

    /// Sum over rows of a 2-D tensor, producing a `[cols]` tensor.
    /// (Used to reduce per-sample bias gradients.)
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "sum_rows requires a matrix");
        let cols = self.shape()[1];
        let mut out = vec![0.0f32; cols];
        for row in self.data().chunks_exact(cols) {
            kernel::add_assign(&mut out, row);
        }
        Tensor::from_vec(vec![cols], out)
    }

    /// Row-wise softmax of a 2-D tensor (numerically stabilized).
    pub fn softmax_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "softmax_rows requires a matrix");
        let cols = self.shape()[1];
        let mut out = self.data().to_vec();
        for row in out.chunks_exact_mut(cols) {
            let max = kernel::reduce_max(row);
            // exp and running sum stay fused: splitting them would keep
            // the same result but walk the row twice.
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            kernel::scale(row, 1.0 / sum);
        }
        Tensor::from_vec(self.shape().to_vec(), out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn argmax_rows_with_ties() {
        let t = Tensor::from_vec(vec![3, 3], vec![1., 3., 2., 5., 5., 1., 0., 0., 0.]);
        assert_eq!(t.argmax_rows(), vec![1, 0, 0]);
    }

    #[test]
    fn sum_rows_basic() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 10., 20., 30.]);
        assert_eq!(t.sum_rows().data(), &[11., 22., 33.]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -1., 0., 1000.]);
        let s = t.softmax_rows();
        for row in s.data().chunks_exact(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-5, "sum {sum}");
        }
        // Large logits must not overflow to NaN.
        assert!(s.data().iter().all(|v| v.is_finite()));
        // The max logit keeps the max probability.
        assert_eq!(s.argmax_rows(), vec![2, 2]);
    }

    #[test]
    fn softmax_uniform_for_equal_logits() {
        let t = Tensor::full(&[1, 4], 3.0).reshape(vec![1, 4]);
        let s = t.softmax_rows();
        for &v in s.data() {
            assert!((v - 0.25).abs() < 1e-6);
        }
    }
}
