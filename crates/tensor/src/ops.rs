//! Elementwise and BLAS-1 style operations on [`Tensor`].
//!
//! All binary ops require identical shapes (the NN layers never need
//! general broadcasting; row-wise bias addition is provided explicitly).
//! The loops themselves live in [`crate::kernel`] — this module only
//! adapts them to the `Tensor` API.

use crate::kernel;
use crate::tensor::Tensor;

impl Tensor {
    /// Elementwise sum: `self + other` (allocates).
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in binary op");
        let mut out = Tensor::zeros(self.shape());
        kernel::add_into(out.data_mut(), self.data(), other.data());
        out
    }

    /// Elementwise difference: `self - other` (allocates).
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product (allocates).
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise map (allocates).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = Tensor::zeros(self.shape());
        kernel::map_into(out.data_mut(), self.data(), f);
        out
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        kernel::map_inplace(self.data_mut(), f);
    }

    /// Elementwise zip-map with shape check (allocates).
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in binary op");
        let mut out = Tensor::zeros(self.shape());
        kernel::zip_into(out.data_mut(), self.data(), other.data(), f);
        out
    }

    /// Scale by a scalar (allocates).
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// In-place `self += alpha * other` (the BLAS `axpy`). This is the
    /// workhorse of every SGD weight update in the reproduction.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpy");
        kernel::axpy(alpha, other.data(), self.data_mut());
    }

    /// In-place `self += other`.
    ///
    /// Kept as `axpy(1.0, ..)` — not the kernel's plain `+=` — so the
    /// historical `y += 1.0 * x` bit behavior is preserved exactly.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.axpy(1.0, other);
    }

    /// In-place scale.
    pub fn scale_inplace(&mut self, s: f32) {
        kernel::scale(self.data_mut(), s);
    }

    /// Set all elements to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data_mut().fill(0.0);
    }

    /// Sum of all elements (sequential, order-pinned).
    pub fn sum(&self) -> f32 {
        kernel::reduce_sum(self.data())
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Squared L2 norm (sequential, order-pinned).
    pub fn sq_norm(&self) -> f32 {
        kernel::reduce_sq_sum(self.data())
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        kernel::reduce_max_abs(self.data())
    }

    /// Add a bias row-vector to every row of a 2-D tensor, in place.
    ///
    /// `self` is `[rows, cols]`, `bias` is `[cols]`.
    pub fn add_row_bias(&mut self, bias: &Tensor) {
        assert_eq!(self.ndim(), 2, "add_row_bias requires a matrix");
        let cols = self.shape()[1];
        assert_eq!(bias.len(), cols, "bias length must equal column count");
        let b = bias.data();
        for row in self.data_mut().chunks_exact_mut(cols) {
            kernel::add_assign(row, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: &[f32]) -> Tensor {
        Tensor::from_vec(vec![v.len()], v.to_vec())
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[1., 2., 3.]);
        let b = t(&[4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        t(&[1., 2.]).add(&t(&[1., 2., 3.]));
    }

    #[test]
    fn axpy_matches_manual() {
        let mut y = t(&[1., 1., 1.]);
        let x = t(&[2., 4., 8.]);
        y.axpy(-0.5, &x);
        assert_eq!(y.data(), &[0., -1., -3.]);
    }

    #[test]
    fn reductions() {
        let a = t(&[3., -4., 0.]);
        assert_eq!(a.sum(), -1.0);
        assert!((a.mean() + 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(a.sq_norm(), 25.0);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn row_bias() {
        let mut m = Tensor::from_vec(vec![2, 3], vec![0., 0., 0., 1., 1., 1.]);
        m.add_row_bias(&t(&[10., 20., 30.]));
        assert_eq!(m.data(), &[10., 20., 30., 11., 21., 31.]);
    }

    #[test]
    fn map_inplace_and_fill_zero() {
        let mut a = t(&[1., -2., 3.]);
        a.map_inplace(f32::abs);
        assert_eq!(a.data(), &[1., 2., 3.]);
        a.fill_zero();
        assert_eq!(a.data(), &[0., 0., 0.]);
    }
}
