//! Shape utilities: element counts, strides, and index arithmetic for
//! contiguous row-major tensors.

/// A tensor shape: dimension sizes in row-major (outermost-first) order.
pub type Shape = Vec<usize>;

/// Total number of elements for a shape. The empty shape denotes a scalar
/// and has one element.
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for a contiguous tensor of the given shape.
///
/// `strides[i]` is the linear-index distance between consecutive elements
/// along dimension `i`.
pub fn contiguous_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![0; shape.len()];
    let mut acc = 1usize;
    for (s, &dim) in strides.iter_mut().zip(shape.iter()).rev() {
        *s = acc;
        acc *= dim;
    }
    strides
}

/// Convert a multi-dimensional index to a linear offset.
///
/// # Panics
/// Panics (in debug builds) if `idx` has the wrong rank or is out of bounds.
#[inline]
pub fn linear_index(shape: &[usize], idx: &[usize]) -> usize {
    debug_assert_eq!(shape.len(), idx.len(), "index rank mismatch");
    let mut off = 0usize;
    let mut stride = 1usize;
    for i in (0..shape.len()).rev() {
        debug_assert!(
            idx[i] < shape[i],
            "index {} out of bounds for dim {i}",
            idx[i]
        );
        off += idx[i] * stride;
        stride *= shape[i];
    }
    off
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_basic() {
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
        assert_eq!(numel(&[0, 5]), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(contiguous_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(contiguous_strides(&[7]), vec![1]);
        assert_eq!(contiguous_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn linear_index_matches_strides() {
        let shape = [2, 3, 4];
        let strides = contiguous_strides(&shape);
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..4 {
                    let expect = a * strides[0] + b * strides[1] + c * strides[2];
                    assert_eq!(linear_index(&shape, &[a, b, c]), expect);
                }
            }
        }
    }

    #[test]
    fn linear_index_is_dense_and_unique() {
        let shape = [3, 5];
        let mut seen = vec![false; numel(&shape)];
        for a in 0..3 {
            for b in 0..5 {
                let li = linear_index(&shape, &[a, b]);
                assert!(!seen[li]);
                seen[li] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
