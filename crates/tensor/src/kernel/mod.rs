//! Unified SIMD kernel layer: the single dispatch surface for every
//! compute-bound inner loop in the workspace.
//!
//! All four hot layers route through this module — `cdsgd-tensor`
//! (GEMM, elementwise, reductions, im2col), `cdsgd-nn` (dense/conv
//! forward+backward, activations, losses), `cdsgd-compress` (2-bit and
//! 1-bit quantizer scans, bit packing, residual accumulation), and
//! `cdsgd-ps` (optimizer `apply` and `apply_update`). Each primitive
//! has exactly one scalar reference implementation in [`scalar`] and,
//! where profitable, a hand-written AVX2 twin in `avx2`.
//!
//! # Dispatch
//!
//! The backend is chosen once per process and cached in a `OnceLock`:
//!
//! * `CDSGD_FORCE_SCALAR` set to anything except `""`/`"0"` pins the
//!   scalar reference path (CI runs the whole workspace this way as a
//!   second pass).
//! * Otherwise, on `x86_64`, `is_x86_feature_detected!("avx2")` selects
//!   the AVX2 backend at runtime.
//! * Every other architecture always takes the scalar path.
//!
//! Because the choice is cached, one process sees one backend for its
//! whole lifetime; tests that need to compare backends either call
//! [`scalar`] directly (it is public precisely for that) or spawn a
//! subprocess with the env var set.
//!
//! # Bit-identity contract
//!
//! Every dispatched kernel must produce **bit-identical** output to its
//! scalar reference for all inputs, including `±0.0`, `NaN`, and
//! `±inf`. This is what keeps the pinned FNV weight hashes in
//! `tests/strategy_equivalence.rs` stable across backends. The rules
//! that make it hold are documented in `avx2`; the short version: no
//! FMA, vectorize across independent outputs only, keep every
//! zero-skip, and express true sequential reductions either scalar-only
//! ([`reduce_sum`] and friends) or under an explicitly striped order
//! contract ([`dot`]).
//!
//! Tail handling: vector bodies process the largest lane-width multiple
//! and fall back to the scalar loop for the remainder, so
//! non-multiple-of-8 lengths exercise both paths in one call.
//!
//! # Parallel tiling
//!
//! Large inputs are tiled across threads with rayon behind a single
//! size threshold, `CDSGD_PAR_THRESHOLD` (work items; default `65536`,
//! `off` disables). GEMM counts `m·n·k` flops against it and splits C
//! into row blocks; elementwise kernels count elements and split into
//! 16 Ki-element tiles. Tiling never changes results: every tile is an
//! independent output range. Packing, quantizer scans, and reductions
//! never tile — they are memory-bound or order-pinned.

pub mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;

use rayon::prelude::*;
use std::ops::Range;
use std::sync::OnceLock;

/// Which kernel backend this process dispatches to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Backend {
    /// Portable scalar reference implementations.
    Scalar,
    /// Hand-written AVX2 (`std::arch`) implementations.
    Avx2,
}

impl Backend {
    /// Human-readable name, used by benches and trace output.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

fn force_scalar_env() -> bool {
    match std::env::var("CDSGD_FORCE_SCALAR") {
        Ok(v) => !(v.is_empty() || v == "0"),
        Err(_) => false,
    }
}

/// The backend selected for this process (cached on first call).
pub fn backend() -> Backend {
    static BACKEND: OnceLock<Backend> = OnceLock::new();
    *BACKEND.get_or_init(|| {
        if force_scalar_env() {
            return Backend::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
        Backend::Scalar
    })
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn simd_active() -> bool {
    backend() == Backend::Avx2
}

/// Work-item threshold above which kernels tile across threads.
///
/// Read once from `CDSGD_PAR_THRESHOLD` (`off` → never parallelize,
/// otherwise a count; default 65536) and cached.
pub fn par_threshold() -> usize {
    static THRESHOLD: OnceLock<usize> = OnceLock::new();
    const DEFAULT: usize = 64 * 1024;
    *THRESHOLD.get_or_init(|| match std::env::var("CDSGD_PAR_THRESHOLD") {
        Ok(v) if v.trim().eq_ignore_ascii_case("off") => usize::MAX,
        Ok(v) => v.trim().parse().unwrap_or(DEFAULT),
        Err(_) => DEFAULT,
    })
}

/// Elementwise tile size (elements per rayon task).
const ELEM_TILE: usize = 16 * 1024;

/// C row-block granularity for parallel GEMM.
const ROW_BLOCK: usize = 32;

/// Run `body(rows, c_rows)` over the `m` rows of the row-major `m`×`n`
/// output `c`, splitting into [`ROW_BLOCK`]-row chunks across threads
/// when `m·n·k` work items reach [`par_threshold`].
fn parallel_rows<F>(c: &mut [f32], m: usize, n: usize, k: usize, body: F)
where
    F: Fn(Range<usize>, &mut [f32]) + Sync,
{
    let work = m.saturating_mul(n).saturating_mul(k);
    if work < par_threshold() || m < 2 {
        body(0..m, c);
        return;
    }
    c.par_chunks_mut(ROW_BLOCK * n)
        .enumerate()
        .for_each(|(blk, chunk)| {
            let start = blk * ROW_BLOCK;
            let rows = chunk.len() / n;
            body(start..start + rows, chunk);
        });
}

/// Tile an elementwise kernel over `y` (and any same-length inputs,
/// addressed by the tile's element offset) when it is large enough.
fn tiled<F>(y: &mut [f32], body: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if y.len() < par_threshold() {
        body(0, y);
        return;
    }
    y.par_chunks_mut(ELEM_TILE)
        .enumerate()
        .for_each(|(t, chunk)| body(t * ELEM_TILE, chunk));
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

macro_rules! dispatch {
    ($avx2:expr, $scalar:expr) => {{
        #[cfg(target_arch = "x86_64")]
        if simd_active() {
            // SAFETY: `simd_active()` implies AVX2 was runtime-detected.
            return unsafe { $avx2 };
        }
        $scalar
    }};
}

/// `y[i] += alpha * x[i]`.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "kernel::axpy length mismatch");
    tiled(y, |off, chunk| {
        let x = &x[off..off + chunk.len()];
        dispatch!(avx2::axpy(alpha, x, chunk), scalar::axpy(alpha, x, chunk))
    });
}

/// `y[i] *= s`.
pub fn scale(y: &mut [f32], s: f32) {
    tiled(y, |_, chunk| {
        dispatch!(avx2::scale(chunk, s), scalar::scale(chunk, s))
    });
}

/// `y[i] += x[i]`.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    assert_eq!(x.len(), y.len(), "kernel::add_assign length mismatch");
    tiled(y, |off, chunk| {
        let x = &x[off..off + chunk.len()];
        dispatch!(avx2::add_assign(chunk, x), scalar::add_assign(chunk, x))
    });
}

/// `y[i] += b`.
pub fn add_scalar(y: &mut [f32], b: f32) {
    tiled(y, |_, chunk| {
        dispatch!(avx2::add_scalar(chunk, b), scalar::add_scalar(chunk, b))
    });
}

/// `out[i] = a[i] + b[i]`.
pub fn add_into(out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(out.len(), a.len(), "kernel::add_into length mismatch");
    assert_eq!(out.len(), b.len(), "kernel::add_into length mismatch");
    tiled(out, |off, chunk| {
        let a = &a[off..off + chunk.len()];
        let b = &b[off..off + chunk.len()];
        dispatch!(avx2::add_into(chunk, a, b), scalar::add_into(chunk, a, b))
    });
}

/// `out[i] = a[i] + alpha * b[i]`.
pub fn scale_add(out: &mut [f32], a: &[f32], alpha: f32, b: &[f32]) {
    assert_eq!(out.len(), a.len(), "kernel::scale_add length mismatch");
    assert_eq!(out.len(), b.len(), "kernel::scale_add length mismatch");
    tiled(out, |off, chunk| {
        let a = &a[off..off + chunk.len()];
        let b = &b[off..off + chunk.len()];
        dispatch!(
            avx2::scale_add(chunk, a, alpha, b),
            scalar::scale_add(chunk, a, alpha, b)
        )
    });
}

/// `out[i] = w[i] - step * g[i]` — kept as its own primitive (rather
/// than `scale_add` with `-step`) so NaN-payload and `-0.0` behavior
/// match the historical `w - step * g` expression exactly.
pub fn sgd_step(out: &mut [f32], w: &[f32], g: &[f32], step: f32) {
    assert_eq!(out.len(), w.len(), "kernel::sgd_step length mismatch");
    assert_eq!(out.len(), g.len(), "kernel::sgd_step length mismatch");
    tiled(out, |off, chunk| {
        let w = &w[off..off + chunk.len()];
        let g = &g[off..off + chunk.len()];
        dispatch!(
            avx2::sgd_step(chunk, w, g, step),
            scalar::sgd_step(chunk, w, g, step)
        )
    });
}

/// `v[i] = mu * v[i] + g[i]` (momentum decay-accumulate).
pub fn decay_add(v: &mut [f32], mu: f32, g: &[f32]) {
    assert_eq!(v.len(), g.len(), "kernel::decay_add length mismatch");
    tiled(v, |off, chunk| {
        let g = &g[off..off + chunk.len()];
        dispatch!(
            avx2::decay_add(chunk, mu, g),
            scalar::decay_add(chunk, mu, g)
        )
    });
}

/// `out[i] = w[i] - step * (g[i] + mu * v[i])` (Nesterov lookahead).
pub fn nesterov_step(out: &mut [f32], w: &[f32], g: &[f32], v: &[f32], step: f32, mu: f32) {
    assert_eq!(out.len(), w.len(), "kernel::nesterov_step length mismatch");
    assert_eq!(out.len(), g.len(), "kernel::nesterov_step length mismatch");
    assert_eq!(out.len(), v.len(), "kernel::nesterov_step length mismatch");
    tiled(out, |off, chunk| {
        let w = &w[off..off + chunk.len()];
        let g = &g[off..off + chunk.len()];
        let v = &v[off..off + chunk.len()];
        dispatch!(
            avx2::nesterov_step(chunk, w, g, v, step, mu),
            scalar::nesterov_step(chunk, w, g, v, step, mu)
        )
    });
}

// ---------------------------------------------------------------------------
// Generic map / zip
// ---------------------------------------------------------------------------

/// `y[i] = f(y[i])`, tiled across threads for large `y`. No SIMD path:
/// `f` is opaque, but the single implementation still deduplicates the
/// loop and picks up tiling.
pub fn map_inplace<F>(y: &mut [f32], f: F)
where
    F: Fn(f32) -> f32 + Sync,
{
    tiled(y, |_, chunk| {
        for v in chunk.iter_mut() {
            *v = f(*v);
        }
    });
}

/// `out[i] = f(x[i])`.
pub fn map_into<F>(out: &mut [f32], x: &[f32], f: F)
where
    F: Fn(f32) -> f32 + Sync,
{
    assert_eq!(out.len(), x.len(), "kernel::map_into length mismatch");
    tiled(out, |off, chunk| {
        let x = &x[off..off + chunk.len()];
        for (o, &v) in chunk.iter_mut().zip(x) {
            *o = f(v);
        }
    });
}

/// `y[i] = f(y[i], x[i])`.
pub fn zip_inplace<F>(y: &mut [f32], x: &[f32], f: F)
where
    F: Fn(f32, f32) -> f32 + Sync,
{
    assert_eq!(y.len(), x.len(), "kernel::zip_inplace length mismatch");
    tiled(y, |off, chunk| {
        let x = &x[off..off + chunk.len()];
        for (o, &v) in chunk.iter_mut().zip(x) {
            *o = f(*o, v);
        }
    });
}

/// `out[i] = f(a[i], b[i])`.
pub fn zip_into<F>(out: &mut [f32], a: &[f32], b: &[f32], f: F)
where
    F: Fn(f32, f32) -> f32 + Sync,
{
    assert_eq!(out.len(), a.len(), "kernel::zip_into length mismatch");
    assert_eq!(out.len(), b.len(), "kernel::zip_into length mismatch");
    tiled(out, |off, chunk| {
        for (i, o) in chunk.iter_mut().enumerate() {
            *o = f(a[off + i], b[off + i]);
        }
    });
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Sequential `Σ x[i]`. **Order-pinned**: scalar in every backend —
/// reassociating this sum would change pinned end-to-end hashes.
pub fn reduce_sum(x: &[f32]) -> f32 {
    scalar::reduce_sum(x)
}

/// Sequential `Σ |x[i]|`. Order-pinned, scalar in every backend.
pub fn reduce_abs_sum(x: &[f32]) -> f32 {
    scalar::reduce_abs_sum(x)
}

/// Sequential `Σ x[i]²`. Order-pinned, scalar in every backend.
pub fn reduce_sq_sum(x: &[f32]) -> f32 {
    scalar::reduce_sq_sum(x)
}

/// `max(x[i])` via the `f32::max` fold (NaN-skipping). Scalar in every
/// backend: the fold's NaN/`-0.0` handling depends on encounter order.
pub fn reduce_max(x: &[f32]) -> f32 {
    scalar::reduce_max(x)
}

/// `max(|x[i]|)`. Order-independent (abs collapses `-0.0`; the fold
/// skips NaN), so this one does get an AVX2 path.
pub fn reduce_max_abs(x: &[f32]) -> f32 {
    dispatch!(avx2::reduce_max_abs(x), scalar::reduce_max_abs(x))
}

/// Dot product under the **striped order contract**: 8 interleaved lane
/// sums over the 8-aligned prefix, combined pairwise, then a sequential
/// tail. Both backends implement this exact order, so results are
/// bit-identical — but note the order differs from a naive `Σ a·b` fold.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "kernel::dot length mismatch");
    dispatch!(avx2::dot(a, b), scalar::dot(a, b))
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

/// `C[m,n] += A[m,k] · B[k,n]`, row-major, parallel over C row blocks.
pub fn gemm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "kernel::gemm A size");
    assert_eq!(b.len(), k * n, "kernel::gemm B size");
    assert_eq!(c.len(), m * n, "kernel::gemm C size");
    parallel_rows(c, m, n, k, |rows, chunk| {
        dispatch!(
            avx2::gemm_block(a, b, rows, chunk, k, n),
            scalar::gemm_block(a, b, rows, chunk, k, n)
        )
    });
}

/// `C[m,n] += A[m,k] · B[n,k]ᵀ`.
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "kernel::gemm_nt A size");
    assert_eq!(b.len(), n * k, "kernel::gemm_nt B size");
    assert_eq!(c.len(), m * n, "kernel::gemm_nt C size");
    parallel_rows(c, m, n, k, |rows, chunk| {
        dispatch!(
            avx2::gemm_nt_block(a, b, rows, chunk, k, n),
            scalar::gemm_nt_block(a, b, rows, chunk, k, n)
        )
    });
}

/// `C[m,n] += A[k,m]ᵀ · B[k,n]`.
pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), k * m, "kernel::gemm_tn A size");
    assert_eq!(b.len(), k * n, "kernel::gemm_tn B size");
    assert_eq!(c.len(), m * n, "kernel::gemm_tn C size");
    parallel_rows(c, m, n, k, |rows, chunk| {
        dispatch!(
            avx2::gemm_tn_block(a, b, rows, chunk, m, k, n),
            scalar::gemm_tn_block(a, b, rows, chunk, m, k, n)
        )
    });
}

// ---------------------------------------------------------------------------
// Bit packing
// ---------------------------------------------------------------------------

/// Pack 2-bit symbols (values `0..=3`) four per byte, low bits first.
/// `out.len()` must be `symbols.len().div_ceil(4)`; fully overwritten.
pub fn pack_2bit(symbols: &[u8], out: &mut [u8]) {
    assert_eq!(
        out.len(),
        symbols.len().div_ceil(4),
        "kernel::pack_2bit output size"
    );
    dispatch!(
        avx2::pack_2bit(symbols, out),
        scalar::pack_2bit(symbols, out)
    )
}

/// Unpack 2-bit symbols; `out.len()` selects how many.
pub fn unpack_2bit(bytes: &[u8], out: &mut [u8]) {
    assert!(
        bytes.len() * 4 >= out.len(),
        "kernel::unpack_2bit byte stream too short"
    );
    dispatch!(
        avx2::unpack_2bit(bytes, out),
        scalar::unpack_2bit(bytes, out)
    )
}

/// Pack booleans eight per byte, low bits first. `out.len()` must be
/// `bits.len().div_ceil(8)`; fully overwritten.
pub fn pack_1bit(bits: &[bool], out: &mut [u8]) {
    assert_eq!(
        out.len(),
        bits.len().div_ceil(8),
        "kernel::pack_1bit output size"
    );
    dispatch!(avx2::pack_1bit(bits, out), scalar::pack_1bit(bits, out))
}

/// Unpack booleans; `out.len()` selects how many.
pub fn unpack_1bit(bytes: &[u8], out: &mut [bool]) {
    assert!(
        bytes.len() * 8 >= out.len(),
        "kernel::unpack_1bit byte stream too short"
    );
    dispatch!(
        avx2::unpack_1bit(bytes, out),
        scalar::unpack_1bit(bytes, out)
    )
}

// ---------------------------------------------------------------------------
// Quantizer scans and decode-accumulate
// ---------------------------------------------------------------------------

/// 2-bit threshold scan with residual feedback: per element,
/// `x = grad[i] + res[i]`; symbol 1 (`q = thr`) if `x ≥ thr`, symbol 2
/// (`q = -thr`) if `x ≤ -thr`, else symbol 0 (`q = 0`); `res[i] = x - q`.
pub fn threshold_scan_residual(grad: &[f32], thr: f32, symbols: &mut [u8], res: &mut [f32]) {
    assert_eq!(
        grad.len(),
        symbols.len(),
        "kernel::threshold_scan_residual size"
    );
    assert_eq!(
        grad.len(),
        res.len(),
        "kernel::threshold_scan_residual size"
    );
    dispatch!(
        avx2::threshold_scan_residual(grad, thr, symbols, res),
        scalar::threshold_scan_residual(grad, thr, symbols, res)
    )
}

/// 2-bit threshold scan over an already-corrected vector, storing the
/// new residual `x - q` into `res`.
pub fn threshold_scan_store(corrected: &[f32], thr: f32, symbols: &mut [u8], res: &mut [f32]) {
    assert_eq!(
        corrected.len(),
        symbols.len(),
        "kernel::threshold_scan_store size"
    );
    assert_eq!(
        corrected.len(),
        res.len(),
        "kernel::threshold_scan_store size"
    );
    dispatch!(
        avx2::threshold_scan_store(corrected, thr, symbols, res),
        scalar::threshold_scan_store(corrected, thr, symbols, res)
    )
}

/// 2-bit threshold scan without residual tracking.
pub fn threshold_scan_plain(grad: &[f32], thr: f32, symbols: &mut [u8]) {
    assert_eq!(
        grad.len(),
        symbols.len(),
        "kernel::threshold_scan_plain size"
    );
    dispatch!(
        avx2::threshold_scan_plain(grad, thr, symbols),
        scalar::threshold_scan_plain(grad, thr, symbols)
    )
}

/// 1-bit sign scan with residual feedback: `bits[i] = x ≥ 0`,
/// `res[i] = x - (±scale)`.
pub fn sign_residual(corrected: &[f32], scale: f32, bits: &mut [bool], res: &mut [f32]) {
    assert_eq!(corrected.len(), bits.len(), "kernel::sign_residual size");
    assert_eq!(corrected.len(), res.len(), "kernel::sign_residual size");
    dispatch!(
        avx2::sign_residual(corrected, scale, bits, res),
        scalar::sign_residual(corrected, scale, bits, res)
    )
}

/// Fused 2-bit decode + accumulate: code 1 adds `thr`, code 2 subtracts
/// it, code 0 leaves the accumulator bits untouched (no `+ 0.0`).
pub fn unpack_2bit_add(packed: &[u8], thr: f32, out: &mut [f32]) {
    assert!(
        packed.len() * 4 >= out.len(),
        "kernel::unpack_2bit_add byte stream too short"
    );
    dispatch!(
        avx2::unpack_2bit_add(packed, thr, out),
        scalar::unpack_2bit_add(packed, thr, out)
    )
}

/// Fused 1-bit decode + accumulate: every element gets `±scale`.
pub fn unpack_1bit_add(signs: &[u8], scale: f32, out: &mut [f32]) {
    assert!(
        signs.len() * 8 >= out.len(),
        "kernel::unpack_1bit_add byte stream too short"
    );
    dispatch!(
        avx2::unpack_1bit_add(signs, scale, out),
        scalar::unpack_1bit_add(signs, scale, out)
    )
}
