//! Hand-written AVX2 implementations of the kernel primitives.
//!
//! Every function here is constrained by the bit-identity contract in the
//! [`super`] module docs: it must produce exactly the bytes the matching
//! [`super::scalar`] function produces, for every input including
//! `±0.0`, `NaN`, and `±inf`. The techniques that make that possible:
//!
//! * **No FMA.** `_mm256_fmadd_ps` rounds once where `mul` + `add`
//!   rounds twice; we always use the two-instruction form because the
//!   scalar reference does.
//! * **Vectorize across independent outputs only.** Elementwise kernels
//!   and the ikj-order GEMMs touch 8 unrelated output elements per
//!   vector op, so per-element operation order is unchanged.
//! * **The transpose trick for GEMM-NT.** A dot product is a true
//!   reduction, so instead of reassociating one dot we compute 8 output
//!   columns at once: 8×8 register transpose of a B tile, then a
//!   broadcast-multiply per `p`. Each lane accumulates its column in
//!   strictly sequential `p` order — the same order as one scalar dot.
//! * **Preserved zero-skips.** The GEMM `av == 0.0` skip and the 2-bit
//!   decoder's "no write for code 0" are kept (via branch or blend):
//!   `c + 0.0` is not a bitwise no-op when `c` is `-0.0`.
//! * **Ordered-quiet compares.** `_CMP_GE_OQ`/`_CMP_LE_OQ` return false
//!   for NaN, matching scalar `>=`/`<=`; `_mm256_max_ps(x, acc)` keeps
//!   `acc` when `x` is NaN, matching `f32::max`'s NaN-skipping fold.
//!
//! # Safety
//! Every function is `unsafe` and requires the caller to have verified
//! AVX2 support (the dispatcher in [`super`] does, once, through a
//! `OnceLock`). Slice length preconditions are `debug_assert`ed to
//! mirror the scalar reference.
#![cfg(target_arch = "x86_64")]

use std::arch::x86_64::*;
use std::ops::Range;

/// 8-lane block count helper: the largest multiple of `w` ≤ `n`.
#[inline(always)]
fn blocks(n: usize, w: usize) -> usize {
    n - n % w
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

/// `y[i] += alpha * x[i]` (AVX2).
#[target_feature(enable = "avx2")]
pub unsafe fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let n8 = blocks(y.len(), 8);
    let va = _mm256_set1_ps(alpha);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i < n8 {
        let vy = _mm256_loadu_ps(yp.add(i));
        let vx = _mm256_loadu_ps(xp.add(i));
        _mm256_storeu_ps(yp.add(i), _mm256_add_ps(vy, _mm256_mul_ps(va, vx)));
        i += 8;
    }
    for i in n8..y.len() {
        y[i] += alpha * x[i];
    }
}

/// `y[i] *= s` (AVX2).
#[target_feature(enable = "avx2")]
pub unsafe fn scale(y: &mut [f32], s: f32) {
    let n8 = blocks(y.len(), 8);
    let vs = _mm256_set1_ps(s);
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i < n8 {
        _mm256_storeu_ps(yp.add(i), _mm256_mul_ps(_mm256_loadu_ps(yp.add(i)), vs));
        i += 8;
    }
    for v in &mut y[n8..] {
        *v *= s;
    }
}

/// `y[i] += x[i]` (AVX2).
#[target_feature(enable = "avx2")]
pub unsafe fn add_assign(y: &mut [f32], x: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    let n8 = blocks(y.len(), 8);
    let (xp, yp) = (x.as_ptr(), y.as_mut_ptr());
    let mut i = 0;
    while i < n8 {
        let s = _mm256_add_ps(_mm256_loadu_ps(yp.add(i)), _mm256_loadu_ps(xp.add(i)));
        _mm256_storeu_ps(yp.add(i), s);
        i += 8;
    }
    for i in n8..y.len() {
        y[i] += x[i];
    }
}

/// `y[i] += b` (AVX2).
#[target_feature(enable = "avx2")]
pub unsafe fn add_scalar(y: &mut [f32], b: f32) {
    let n8 = blocks(y.len(), 8);
    let vb = _mm256_set1_ps(b);
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i < n8 {
        _mm256_storeu_ps(yp.add(i), _mm256_add_ps(_mm256_loadu_ps(yp.add(i)), vb));
        i += 8;
    }
    for v in &mut y[n8..] {
        *v += b;
    }
}

/// `out[i] = a[i] + b[i]` (AVX2).
#[target_feature(enable = "avx2")]
pub unsafe fn add_into(out: &mut [f32], a: &[f32], b: &[f32]) {
    debug_assert_eq!(out.len(), a.len());
    debug_assert_eq!(out.len(), b.len());
    let n8 = blocks(out.len(), 8);
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i < n8 {
        let s = _mm256_add_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
        _mm256_storeu_ps(op.add(i), s);
        i += 8;
    }
    for i in n8..out.len() {
        out[i] = a[i] + b[i];
    }
}

/// `out[i] = a[i] + alpha * b[i]` (AVX2).
#[target_feature(enable = "avx2")]
pub unsafe fn scale_add(out: &mut [f32], a: &[f32], alpha: f32, b: &[f32]) {
    debug_assert_eq!(out.len(), a.len());
    debug_assert_eq!(out.len(), b.len());
    let n8 = blocks(out.len(), 8);
    let va = _mm256_set1_ps(alpha);
    let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i < n8 {
        let s = _mm256_add_ps(
            _mm256_loadu_ps(ap.add(i)),
            _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(i))),
        );
        _mm256_storeu_ps(op.add(i), s);
        i += 8;
    }
    for i in n8..out.len() {
        out[i] = a[i] + alpha * b[i];
    }
}

/// `out[i] = w[i] - step * g[i]` (AVX2).
#[target_feature(enable = "avx2")]
pub unsafe fn sgd_step(out: &mut [f32], w: &[f32], g: &[f32], step: f32) {
    debug_assert_eq!(out.len(), w.len());
    debug_assert_eq!(out.len(), g.len());
    let n8 = blocks(out.len(), 8);
    let vs = _mm256_set1_ps(step);
    let (wp, gp, op) = (w.as_ptr(), g.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i < n8 {
        let d = _mm256_sub_ps(
            _mm256_loadu_ps(wp.add(i)),
            _mm256_mul_ps(vs, _mm256_loadu_ps(gp.add(i))),
        );
        _mm256_storeu_ps(op.add(i), d);
        i += 8;
    }
    for i in n8..out.len() {
        out[i] = w[i] - step * g[i];
    }
}

/// `v[i] = mu * v[i] + g[i]` (AVX2).
#[target_feature(enable = "avx2")]
pub unsafe fn decay_add(v: &mut [f32], mu: f32, g: &[f32]) {
    debug_assert_eq!(v.len(), g.len());
    let n8 = blocks(v.len(), 8);
    let vm = _mm256_set1_ps(mu);
    let (vp, gp) = (v.as_mut_ptr(), g.as_ptr());
    let mut i = 0;
    while i < n8 {
        let s = _mm256_add_ps(
            _mm256_mul_ps(vm, _mm256_loadu_ps(vp.add(i))),
            _mm256_loadu_ps(gp.add(i)),
        );
        _mm256_storeu_ps(vp.add(i), s);
        i += 8;
    }
    for i in n8..v.len() {
        v[i] = mu * v[i] + g[i];
    }
}

/// `out[i] = w[i] - step * (g[i] + mu * v[i])` (AVX2).
#[target_feature(enable = "avx2")]
pub unsafe fn nesterov_step(out: &mut [f32], w: &[f32], g: &[f32], v: &[f32], step: f32, mu: f32) {
    debug_assert_eq!(out.len(), w.len());
    debug_assert_eq!(out.len(), g.len());
    debug_assert_eq!(out.len(), v.len());
    let n8 = blocks(out.len(), 8);
    let vs = _mm256_set1_ps(step);
    let vm = _mm256_set1_ps(mu);
    let (wp, gp, vp, op) = (w.as_ptr(), g.as_ptr(), v.as_ptr(), out.as_mut_ptr());
    let mut i = 0;
    while i < n8 {
        let look = _mm256_add_ps(
            _mm256_loadu_ps(gp.add(i)),
            _mm256_mul_ps(vm, _mm256_loadu_ps(vp.add(i))),
        );
        let d = _mm256_sub_ps(_mm256_loadu_ps(wp.add(i)), _mm256_mul_ps(vs, look));
        _mm256_storeu_ps(op.add(i), d);
        i += 8;
    }
    for i in n8..out.len() {
        out[i] = w[i] - step * (g[i] + mu * v[i]);
    }
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Striped-order dot product (AVX2) — bit-identical to
/// [`super::scalar::dot`] by construction: one vector accumulator is
/// exactly the scalar reference's 8 stripe accumulators, combined with
/// the same pairwise tree, then the same sequential tail.
#[target_feature(enable = "avx2")]
pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n8 = blocks(a.len(), 8);
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut vacc = _mm256_setzero_ps();
    let mut i = 0;
    while i < n8 {
        let prod = _mm256_mul_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)));
        vacc = _mm256_add_ps(vacc, prod);
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), vacc);
    let mut acc = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for i in n8..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

/// `max(|x[i]|)` (AVX2). Order-independent once `abs` has collapsed
/// `-0.0` to `+0.0`, and `_mm256_max_ps(v, acc)` drops NaN lanes just
/// like the scalar `f32::max` fold, so the result is bit-identical to
/// [`super::scalar::reduce_max_abs`].
#[target_feature(enable = "avx2")]
pub unsafe fn reduce_max_abs(x: &[f32]) -> f32 {
    let n8 = blocks(x.len(), 8);
    let absmask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFF_FFFF));
    let xp = x.as_ptr();
    let mut vm = _mm256_setzero_ps();
    let mut i = 0;
    while i < n8 {
        let va = _mm256_and_ps(_mm256_loadu_ps(xp.add(i)), absmask);
        // Operand order matters: max_ps returns the *second* operand
        // when the first is NaN, so a NaN in `va` keeps the running max.
        vm = _mm256_max_ps(va, vm);
        i += 8;
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), vm);
    let mut m = lanes.iter().fold(0.0f32, |m, &v| m.max(v));
    for &v in &x[n8..] {
        m = m.max(v.abs());
    }
    m
}

// ---------------------------------------------------------------------------
// GEMM microkernels
// ---------------------------------------------------------------------------

/// `C[rows, n] += A[rows, k] · B[k, n]` (AVX2, ikj order).
///
/// Register blocking: 32 output columns (4 ymm) are held in registers
/// across the whole `p` loop, so each C element is loaded/stored once
/// per block instead of once per `p`. Each 32-column B panel is packed
/// into a contiguous scratch buffer once per panel — the stride-`n` walk
/// through B happens once instead of once per output row, and the hot
/// loop reads sequential, L2-resident memory even when B itself spills
/// cache. Per element the adds still happen in increasing `p` order with
/// the `av == 0.0` skip intact, so the result is bit-identical to the
/// scalar ikj loop.
#[target_feature(enable = "avx2")]
pub unsafe fn gemm_block(
    a: &[f32],
    b: &[f32],
    rows: Range<usize>,
    c_chunk: &mut [f32],
    k: usize,
    n: usize,
) {
    let bp = b.as_ptr();
    let mut panel = vec![0.0f32; k * 32];
    let mut j = 0usize;
    while j + 32 <= n {
        for p in 0..k {
            let src = bp.add(p * n + j);
            let dst = panel.as_mut_ptr().add(p * 32);
            _mm256_storeu_ps(dst, _mm256_loadu_ps(src));
            _mm256_storeu_ps(dst.add(8), _mm256_loadu_ps(src.add(8)));
            _mm256_storeu_ps(dst.add(16), _mm256_loadu_ps(src.add(16)));
            _mm256_storeu_ps(dst.add(24), _mm256_loadu_ps(src.add(24)));
        }
        let pp = panel.as_ptr();
        for (ri, i) in rows.clone().enumerate() {
            let a_row = &a[i * k..(i + 1) * k];
            let cp = c_chunk.as_mut_ptr().add(ri * n + j);
            let mut c0 = _mm256_loadu_ps(cp);
            let mut c1 = _mm256_loadu_ps(cp.add(8));
            let mut c2 = _mm256_loadu_ps(cp.add(16));
            let mut c3 = _mm256_loadu_ps(cp.add(24));
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let va = _mm256_set1_ps(av);
                let br = pp.add(p * 32);
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(va, _mm256_loadu_ps(br)));
                c1 = _mm256_add_ps(c1, _mm256_mul_ps(va, _mm256_loadu_ps(br.add(8))));
                c2 = _mm256_add_ps(c2, _mm256_mul_ps(va, _mm256_loadu_ps(br.add(16))));
                c3 = _mm256_add_ps(c3, _mm256_mul_ps(va, _mm256_loadu_ps(br.add(24))));
            }
            _mm256_storeu_ps(cp, c0);
            _mm256_storeu_ps(cp.add(8), c1);
            _mm256_storeu_ps(cp.add(16), c2);
            _mm256_storeu_ps(cp.add(24), c3);
        }
        j += 32;
    }
    if j >= n {
        return;
    }
    for (ri, i) in rows.enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c_chunk[ri * n..(ri + 1) * n];
        let cp = c_row.as_mut_ptr();
        let mut jj = j;
        while jj + 8 <= n {
            let mut c0 = _mm256_loadu_ps(cp.add(jj));
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let va = _mm256_set1_ps(av);
                c0 = _mm256_add_ps(c0, _mm256_mul_ps(va, _mm256_loadu_ps(bp.add(p * n + jj))));
            }
            _mm256_storeu_ps(cp.add(jj), c0);
            jj += 8;
        }
        if jj < n {
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b[p * n..(p + 1) * n];
                for jx in jj..n {
                    c_row[jx] += av * b_row[jx];
                }
            }
        }
    }
}

/// `C[rows, n] += A[k, m]ᵀ · B[k, n]` (AVX2): the same column-blocked
/// broadcast kernel as [`gemm_block`] with strided A reads.
#[target_feature(enable = "avx2")]
pub unsafe fn gemm_tn_block(
    a: &[f32],
    b: &[f32],
    rows: Range<usize>,
    c_chunk: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    // Transpose the A band once (one stride-`m` pass) so the hot loops
    // read contiguous rows, then run the identical panel-packed kernel
    // as [`gemm_block`].
    let band: Vec<usize> = rows.collect();
    let mut a_t = vec![0.0f32; band.len() * k];
    for (ri, &i) in band.iter().enumerate() {
        for p in 0..k {
            a_t[ri * k + p] = a[p * m + i];
        }
    }
    gemm_block(&a_t, b, 0..band.len(), c_chunk, k, n);
}

/// Transpose an 8×8 f32 tile held in registers: output `q` holds input
/// row elements at position `q` across lanes (`out[q]` lane `u` = `r[u]`
/// lane `q`).
#[target_feature(enable = "avx2")]
unsafe fn transpose8(r: [__m256; 8]) -> [__m256; 8] {
    let t0 = _mm256_unpacklo_ps(r[0], r[1]);
    let t1 = _mm256_unpackhi_ps(r[0], r[1]);
    let t2 = _mm256_unpacklo_ps(r[2], r[3]);
    let t3 = _mm256_unpackhi_ps(r[2], r[3]);
    let t4 = _mm256_unpacklo_ps(r[4], r[5]);
    let t5 = _mm256_unpackhi_ps(r[4], r[5]);
    let t6 = _mm256_unpacklo_ps(r[6], r[7]);
    let t7 = _mm256_unpackhi_ps(r[6], r[7]);
    let u0 = _mm256_shuffle_ps::<0x44>(t0, t2);
    let u1 = _mm256_shuffle_ps::<0xEE>(t0, t2);
    let u2 = _mm256_shuffle_ps::<0x44>(t1, t3);
    let u3 = _mm256_shuffle_ps::<0xEE>(t1, t3);
    let u4 = _mm256_shuffle_ps::<0x44>(t4, t6);
    let u5 = _mm256_shuffle_ps::<0xEE>(t4, t6);
    let u6 = _mm256_shuffle_ps::<0x44>(t5, t7);
    let u7 = _mm256_shuffle_ps::<0xEE>(t5, t7);
    [
        _mm256_permute2f128_ps::<0x20>(u0, u4),
        _mm256_permute2f128_ps::<0x20>(u1, u5),
        _mm256_permute2f128_ps::<0x20>(u2, u6),
        _mm256_permute2f128_ps::<0x20>(u3, u7),
        _mm256_permute2f128_ps::<0x31>(u0, u4),
        _mm256_permute2f128_ps::<0x31>(u1, u5),
        _mm256_permute2f128_ps::<0x31>(u2, u6),
        _mm256_permute2f128_ps::<0x31>(u3, u7),
    ]
}

/// `C[rows, n] += A[rows, k] · B[n, k]ᵀ` (AVX2).
///
/// Each output element is a dot product — a true reduction — so naive
/// lane-striping would reassociate it. Instead we compute 8 output
/// columns at once: load an 8×8 tile of B, transpose it in registers,
/// and broadcast `a[p]` across lanes. Lane `u` then accumulates column
/// `j+u` in strictly increasing `p` order, which is exactly the scalar
/// sequential dot — bit-identical, including the `0.0` start and the
/// `c += acc` finish.
#[target_feature(enable = "avx2")]
pub unsafe fn gemm_nt_block(
    a: &[f32],
    b: &[f32],
    rows: Range<usize>,
    c_chunk: &mut [f32],
    k: usize,
    n: usize,
) {
    for (ri, i) in rows.enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c_chunk[ri * n..(ri + 1) * n];
        let bp = b.as_ptr();
        let mut j = 0usize;
        while j + 8 <= n {
            let mut acc = _mm256_setzero_ps();
            let mut p = 0usize;
            while p + 8 <= k {
                let tile = transpose8([
                    _mm256_loadu_ps(bp.add(j * k + p)),
                    _mm256_loadu_ps(bp.add((j + 1) * k + p)),
                    _mm256_loadu_ps(bp.add((j + 2) * k + p)),
                    _mm256_loadu_ps(bp.add((j + 3) * k + p)),
                    _mm256_loadu_ps(bp.add((j + 4) * k + p)),
                    _mm256_loadu_ps(bp.add((j + 5) * k + p)),
                    _mm256_loadu_ps(bp.add((j + 6) * k + p)),
                    _mm256_loadu_ps(bp.add((j + 7) * k + p)),
                ]);
                for (q, &t) in tile.iter().enumerate() {
                    let va = _mm256_set1_ps(a_row[p + q]);
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(va, t));
                }
                p += 8;
            }
            while p < k {
                // Strided column gather for the p-tail; still one
                // sequential add per lane.
                let bv = _mm256_setr_ps(
                    b[j * k + p],
                    b[(j + 1) * k + p],
                    b[(j + 2) * k + p],
                    b[(j + 3) * k + p],
                    b[(j + 4) * k + p],
                    b[(j + 5) * k + p],
                    b[(j + 6) * k + p],
                    b[(j + 7) * k + p],
                );
                acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(a_row[p]), bv));
                p += 1;
            }
            let cptr = c_row.as_mut_ptr().add(j);
            _mm256_storeu_ps(cptr, _mm256_add_ps(_mm256_loadu_ps(cptr), acc));
            j += 8;
        }
        for jj in j..n {
            let b_row = &b[jj * k..(jj + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            c_row[jj] += acc;
        }
    }
}

// ---------------------------------------------------------------------------
// Bit-packing
// ---------------------------------------------------------------------------

/// Pack 2-bit symbols four per byte (AVX2): 32 symbols per iteration.
/// `maddubs` folds adjacent pairs as `s0 + 4·s1`, `madd` folds the i16
/// pairs as `lo + 16·hi`, leaving one packed byte per i32 lane; a
/// byte-shuffle then narrows 8 lanes to 8 bytes.
#[target_feature(enable = "avx2")]
pub unsafe fn pack_2bit(symbols: &[u8], out: &mut [u8]) {
    debug_assert_eq!(out.len(), symbols.len().div_ceil(4));
    let n32 = blocks(symbols.len(), 32);
    let sp = symbols.as_ptr();
    let pair_w = _mm256_set1_epi16(0x0401); // bytes [1, 4] per pair
    let quad_w = _mm256_set1_epi32(0x0010_0001); // i16 [1, 16] per quad
                                                 // Within each 128-bit lane, gather byte 0 of each dword to the front.
    let narrow = _mm256_setr_epi8(
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, //
        0, 4, 8, 12, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1, -1,
    );
    let mut i = 0;
    while i < n32 {
        let v = _mm256_loadu_si256(sp.add(i) as *const __m256i);
        let v = _mm256_and_si256(v, _mm256_set1_epi8(0b11)); // match scalar `s & 0b11`
        let pairs = _mm256_maddubs_epi16(v, pair_w);
        let quads = _mm256_madd_epi16(pairs, quad_w);
        let packed = _mm256_shuffle_epi8(quads, narrow);
        let lo = _mm_cvtsi128_si32(_mm256_castsi256_si128(packed)) as u32;
        let hi = _mm_cvtsi128_si32(_mm256_extracti128_si256::<1>(packed)) as u32;
        out[i / 4..i / 4 + 4].copy_from_slice(&lo.to_le_bytes());
        out[i / 4 + 4..i / 4 + 8].copy_from_slice(&hi.to_le_bytes());
        i += 32;
    }
    // Tail: delegate to the scalar bit loop over the remaining symbols.
    let done_bytes = n32 / 4;
    for b in &mut out[done_bytes..] {
        *b = 0;
    }
    for (idx, &s) in symbols[n32..].iter().enumerate() {
        let i = n32 + idx;
        out[i / 4] |= (s & 0b11) << (2 * (i % 4));
    }
}

/// Unpack 2-bit symbols (AVX2): 8 packed bytes → 32 symbol bytes per
/// iteration. Each source byte is widened to a dword, replicated across
/// its four bytes, then per-byte masked shifts extract the four codes.
#[target_feature(enable = "avx2")]
pub unsafe fn unpack_2bit(bytes: &[u8], out: &mut [u8]) {
    debug_assert!(bytes.len() * 4 >= out.len());
    let n32 = blocks(out.len(), 32);
    let op = out.as_mut_ptr();
    let rep_w = _mm256_set1_epi32(0x0101_0101);
    let m0 = _mm256_set1_epi32(0x0000_0003);
    let m1 = _mm256_set1_epi32(0x0000_0300);
    let m2 = _mm256_set1_epi32(0x0003_0000);
    let m3 = _mm256_set1_epi32(0x0300_0000);
    let mut i = 0;
    while i < n32 {
        let src = _mm_loadl_epi64(bytes.as_ptr().add(i / 4) as *const __m128i);
        let vd = _mm256_cvtepu8_epi32(src);
        let rep = _mm256_mullo_epi32(vd, rep_w);
        let s = _mm256_or_si256(
            _mm256_or_si256(
                _mm256_and_si256(rep, m0),
                _mm256_and_si256(_mm256_srli_epi32::<2>(rep), m1),
            ),
            _mm256_or_si256(
                _mm256_and_si256(_mm256_srli_epi32::<4>(rep), m2),
                _mm256_and_si256(_mm256_srli_epi32::<6>(rep), m3),
            ),
        );
        _mm256_storeu_si256(op.add(i) as *mut __m256i, s);
        i += 32;
    }
    for (idx, o) in out[n32..].iter_mut().enumerate() {
        let i = n32 + idx;
        *o = (bytes[i / 4] >> (2 * (i % 4))) & 0b11;
    }
}

/// Pack booleans eight per byte (AVX2): 32 bools → one `movemask` → 4
/// output bytes per iteration.
#[target_feature(enable = "avx2")]
pub unsafe fn pack_1bit(bits: &[bool], out: &mut [u8]) {
    debug_assert_eq!(out.len(), bits.len().div_ceil(8));
    let n32 = blocks(bits.len(), 32);
    let bp = bits.as_ptr() as *const u8;
    let zero = _mm256_setzero_si256();
    let mut i = 0;
    while i < n32 {
        let v = _mm256_loadu_si256(bp.add(i) as *const __m256i);
        let m = _mm256_movemask_epi8(_mm256_cmpgt_epi8(v, zero)) as u32;
        out[i / 8..i / 8 + 4].copy_from_slice(&m.to_le_bytes());
        i += 32;
    }
    let done_bytes = n32 / 8;
    for b in &mut out[done_bytes..] {
        *b = 0;
    }
    for (idx, &bit) in bits[n32..].iter().enumerate() {
        let i = n32 + idx;
        if bit {
            out[i / 8] |= 1 << (i % 8);
        }
    }
}

/// Unpack booleans (AVX2): 4 packed bytes → 32 bool bytes per
/// iteration via byte replication + per-byte bit test.
#[target_feature(enable = "avx2")]
pub unsafe fn unpack_1bit(bytes: &[u8], out: &mut [bool]) {
    debug_assert!(bytes.len() * 8 >= out.len());
    let n32 = blocks(out.len(), 32);
    let op = out.as_mut_ptr() as *mut u8;
    // Replicate source byte j across output bytes 8j..8j+7. set1_epi32
    // puts the same 4 source bytes in every 128-bit lane, so lane-local
    // shuffle indices 0..3 reach all of them.
    let spread = _mm256_setr_epi8(
        0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1, //
        2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3,
    );
    let bitsel = _mm256_set1_epi64x(0x8040_2010_0804_0201u64 as i64);
    let one = _mm256_set1_epi8(1);
    let mut i = 0;
    while i < n32 {
        let w = u32::from_le_bytes([
            bytes[i / 8],
            bytes[i / 8 + 1],
            bytes[i / 8 + 2],
            bytes[i / 8 + 3],
        ]);
        let rep = _mm256_shuffle_epi8(_mm256_set1_epi32(w as i32), spread);
        let hit = _mm256_cmpeq_epi8(_mm256_and_si256(rep, bitsel), bitsel);
        _mm256_storeu_si256(op.add(i) as *mut __m256i, _mm256_and_si256(hit, one));
        i += 32;
    }
    for (idx, o) in out[n32..].iter_mut().enumerate() {
        let i = n32 + idx;
        *o = (bytes[i / 8] >> (i % 8)) & 1 == 1;
    }
}

// ---------------------------------------------------------------------------
// Quantizer scans
// ---------------------------------------------------------------------------

/// Shared body of the 2-bit threshold scans: given the corrected vector
/// `x`, emit `q`, store `x - q` through `res_out`, and write symbols
/// from the two compare masks.
#[target_feature(enable = "avx2")]
unsafe fn threshold_core(
    x: __m256,
    vthr: __m256,
    vnthr: __m256,
    res_out: *mut f32,
    symbols: &mut [u8],
) {
    let mpos = _mm256_cmp_ps::<_CMP_GE_OQ>(x, vthr);
    let mneg = _mm256_cmp_ps::<_CMP_LE_OQ>(x, vnthr);
    let q = _mm256_or_ps(_mm256_and_ps(mpos, vthr), _mm256_and_ps(mneg, vnthr));
    _mm256_storeu_ps(res_out, _mm256_sub_ps(x, q));
    let m1 = _mm256_movemask_ps(mpos) as u32;
    let m2 = _mm256_movemask_ps(mneg) as u32;
    for (l, s) in symbols.iter_mut().enumerate() {
        *s = (((m1 >> l) & 1) | (((m2 >> l) & 1) << 1)) as u8;
    }
}

/// [`super::scalar::threshold_scan_residual`] (AVX2).
#[target_feature(enable = "avx2")]
pub unsafe fn threshold_scan_residual(grad: &[f32], thr: f32, symbols: &mut [u8], res: &mut [f32]) {
    debug_assert_eq!(grad.len(), symbols.len());
    debug_assert_eq!(grad.len(), res.len());
    let n8 = blocks(grad.len(), 8);
    let vthr = _mm256_set1_ps(thr);
    let vnthr = _mm256_set1_ps(-thr);
    let (gp, rp) = (grad.as_ptr(), res.as_mut_ptr());
    let mut i = 0;
    while i < n8 {
        let x = _mm256_add_ps(_mm256_loadu_ps(gp.add(i)), _mm256_loadu_ps(rp.add(i)));
        threshold_core(x, vthr, vnthr, rp.add(i), &mut symbols[i..i + 8]);
        i += 8;
    }
    if n8 < grad.len() {
        super::scalar::threshold_scan_residual(
            &grad[n8..],
            thr,
            &mut symbols[n8..],
            &mut res[n8..],
        );
    }
}

/// [`super::scalar::threshold_scan_store`] (AVX2).
#[target_feature(enable = "avx2")]
pub unsafe fn threshold_scan_store(
    corrected: &[f32],
    thr: f32,
    symbols: &mut [u8],
    res: &mut [f32],
) {
    debug_assert_eq!(corrected.len(), symbols.len());
    debug_assert_eq!(corrected.len(), res.len());
    let n8 = blocks(corrected.len(), 8);
    let vthr = _mm256_set1_ps(thr);
    let vnthr = _mm256_set1_ps(-thr);
    let (cp, rp) = (corrected.as_ptr(), res.as_mut_ptr());
    let mut i = 0;
    while i < n8 {
        let x = _mm256_loadu_ps(cp.add(i));
        threshold_core(x, vthr, vnthr, rp.add(i), &mut symbols[i..i + 8]);
        i += 8;
    }
    if n8 < corrected.len() {
        super::scalar::threshold_scan_store(
            &corrected[n8..],
            thr,
            &mut symbols[n8..],
            &mut res[n8..],
        );
    }
}

/// [`super::scalar::threshold_scan_plain`] (AVX2).
#[target_feature(enable = "avx2")]
pub unsafe fn threshold_scan_plain(grad: &[f32], thr: f32, symbols: &mut [u8]) {
    debug_assert_eq!(grad.len(), symbols.len());
    let n8 = blocks(grad.len(), 8);
    let vthr = _mm256_set1_ps(thr);
    let vnthr = _mm256_set1_ps(-thr);
    let gp = grad.as_ptr();
    let mut i = 0;
    while i < n8 {
        let x = _mm256_loadu_ps(gp.add(i));
        let m1 = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_GE_OQ>(x, vthr)) as u32;
        let m2 = _mm256_movemask_ps(_mm256_cmp_ps::<_CMP_LE_OQ>(x, vnthr)) as u32;
        for (l, s) in symbols[i..i + 8].iter_mut().enumerate() {
            *s = (((m1 >> l) & 1) | (((m2 >> l) & 1) << 1)) as u8;
        }
        i += 8;
    }
    if n8 < grad.len() {
        super::scalar::threshold_scan_plain(&grad[n8..], thr, &mut symbols[n8..]);
    }
}

/// [`super::scalar::sign_residual`] (AVX2).
#[target_feature(enable = "avx2")]
pub unsafe fn sign_residual(corrected: &[f32], scale: f32, bits: &mut [bool], res: &mut [f32]) {
    debug_assert_eq!(corrected.len(), bits.len());
    debug_assert_eq!(corrected.len(), res.len());
    let n8 = blocks(corrected.len(), 8);
    let vpos = _mm256_set1_ps(scale);
    let vneg = _mm256_set1_ps(-scale);
    let zero = _mm256_setzero_ps();
    let (cp, rp) = (corrected.as_ptr(), res.as_mut_ptr());
    let mut i = 0;
    while i < n8 {
        let x = _mm256_loadu_ps(cp.add(i));
        let mpos = _mm256_cmp_ps::<_CMP_GE_OQ>(x, zero);
        let q = _mm256_blendv_ps(vneg, vpos, mpos);
        _mm256_storeu_ps(rp.add(i), _mm256_sub_ps(x, q));
        let m = _mm256_movemask_ps(mpos) as u32;
        for (l, bit) in bits[i..i + 8].iter_mut().enumerate() {
            *bit = (m >> l) & 1 == 1;
        }
        i += 8;
    }
    if n8 < corrected.len() {
        super::scalar::sign_residual(&corrected[n8..], scale, &mut bits[n8..], &mut res[n8..]);
    }
}

// ---------------------------------------------------------------------------
// Decode-accumulate
// ---------------------------------------------------------------------------

/// [`super::scalar::unpack_2bit_add`] (AVX2). The "no write for code 0"
/// rule is kept with a blend: untouched lanes get their original
/// accumulator bits back, never `acc + 0.0`.
#[target_feature(enable = "avx2")]
pub unsafe fn unpack_2bit_add(packed: &[u8], thr: f32, out: &mut [f32]) {
    debug_assert!(packed.len() * 4 >= out.len());
    let n8 = blocks(out.len(), 8);
    let vthr = _mm256_set1_ps(thr);
    let vnthr = _mm256_set1_ps(-thr);
    let shifts = _mm256_setr_epi32(0, 2, 4, 6, 8, 10, 12, 14);
    let three = _mm256_set1_epi32(3);
    let one = _mm256_set1_epi32(1);
    let two = _mm256_set1_epi32(2);
    let op = out.as_mut_ptr();
    let mut i = 0;
    while i < n8 {
        let w = (packed[i / 4] as u32 | (packed[i / 4 + 1] as u32) << 8) as i32;
        let codes = _mm256_and_si256(_mm256_srlv_epi32(_mm256_set1_epi32(w), shifts), three);
        let mpos = _mm256_cmpeq_epi32(codes, one);
        let mneg = _mm256_cmpeq_epi32(codes, two);
        let addend = _mm256_or_ps(
            _mm256_and_ps(_mm256_castsi256_ps(mpos), vthr),
            _mm256_and_ps(_mm256_castsi256_ps(mneg), vnthr),
        );
        let touched = _mm256_castsi256_ps(_mm256_or_si256(mpos, mneg));
        let cur = _mm256_loadu_ps(op.add(i));
        let sum = _mm256_add_ps(cur, addend);
        _mm256_storeu_ps(op.add(i), _mm256_blendv_ps(cur, sum, touched));
        i += 8;
    }
    if n8 < out.len() {
        // Scalar tail re-derives its own byte offsets from the absolute
        // element index, so slicing `out` is enough.
        for (idx, o) in out[n8..].iter_mut().enumerate() {
            let i = n8 + idx;
            match (packed[i / 4] >> (2 * (i % 4))) & 0b11 {
                1 => *o += thr,
                2 => *o -= thr,
                _ => {}
            }
        }
    }
}

/// [`super::scalar::unpack_1bit_add`] (AVX2). Every lane is touched
/// (`±scale`), matching the scalar decoder.
#[target_feature(enable = "avx2")]
pub unsafe fn unpack_1bit_add(signs: &[u8], scale: f32, out: &mut [f32]) {
    debug_assert!(signs.len() * 8 >= out.len());
    let n8 = blocks(out.len(), 8);
    let vpos = _mm256_set1_ps(scale);
    let vneg = _mm256_set1_ps(-scale);
    let shifts = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    let one = _mm256_set1_epi32(1);
    let op = out.as_mut_ptr();
    let mut i = 0;
    while i < n8 {
        let b = _mm256_set1_epi32(signs[i / 8] as i32);
        let hit = _mm256_cmpeq_epi32(_mm256_and_si256(_mm256_srlv_epi32(b, shifts), one), one);
        let addend = _mm256_blendv_ps(vneg, vpos, _mm256_castsi256_ps(hit));
        _mm256_storeu_ps(op.add(i), _mm256_add_ps(_mm256_loadu_ps(op.add(i)), addend));
        i += 8;
    }
    for (idx, o) in out[n8..].iter_mut().enumerate() {
        let i = n8 + idx;
        *o += if (signs[i / 8] >> (i % 8)) & 1 == 1 {
            scale
        } else {
            -scale
        };
    }
}
