//! Scalar reference implementations of every kernel primitive.
//!
//! These are the *semantics* of the kernel layer: the dispatched SIMD
//! paths in the private `avx2` sibling must reproduce each function here
//! bit for bit
//! (see the module docs of [`super`] for the contract, including the two
//! reduction orders). The bodies are deliberately plain loops — they are
//! what the pre-kernel code in `matmul.rs`/`ops.rs`/the compress crate
//! executed, hoisted into one place so there is exactly one reference
//! implementation of each primitive.
//!
//! The module is public so tests and benches can pin a path explicitly
//! (bit-identity proptests compare these against the dispatched entry
//! points; `cdsgd-bench` reports scalar-vs-SIMD for the same buffer).

use std::ops::Range;

// ---------------------------------------------------------------------------
// Elementwise (BLAS-1 style)
// ---------------------------------------------------------------------------

/// `y[i] += alpha * x[i]`.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y[i] *= s`.
pub fn scale(y: &mut [f32], s: f32) {
    for v in y {
        *v *= s;
    }
}

/// `y[i] += x[i]`.
pub fn add_assign(y: &mut [f32], x: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += xi;
    }
}

/// `y[i] += b` (row-bias broadcast add).
pub fn add_scalar(y: &mut [f32], b: f32) {
    for v in y {
        *v += b;
    }
}

/// `out[i] = a[i] + b[i]` (residual accumulate into a scratch buffer).
pub fn add_into(out: &mut [f32], a: &[f32], b: &[f32]) {
    debug_assert_eq!(out.len(), a.len());
    debug_assert_eq!(out.len(), b.len());
    for ((o, &av), &bv) in out.iter_mut().zip(a).zip(b) {
        *o = av + bv;
    }
}

/// `out[i] = a[i] + alpha * b[i]` (out-of-place axpy).
pub fn scale_add(out: &mut [f32], a: &[f32], alpha: f32, b: &[f32]) {
    debug_assert_eq!(out.len(), a.len());
    debug_assert_eq!(out.len(), b.len());
    for ((o, &av), &bv) in out.iter_mut().zip(a).zip(b) {
        *o = av + alpha * bv;
    }
}

/// `out[i] = w[i] - step * g[i]` — the server's plain-SGD update (paper
/// eq. 10) and the second half of heavy-ball. Kept as its own primitive
/// (rather than `scale_add` with `-step`) so the expression tree matches
/// the historical loop exactly even for NaN payload propagation.
pub fn sgd_step(out: &mut [f32], w: &[f32], g: &[f32], step: f32) {
    debug_assert_eq!(out.len(), w.len());
    debug_assert_eq!(out.len(), g.len());
    for ((o, &wv), &gv) in out.iter_mut().zip(w).zip(g) {
        *o = wv - step * gv;
    }
}

/// `v[i] = mu * v[i] + g[i]` — momentum/velocity decay-accumulate
/// (heavy-ball, Nesterov, and DGC momentum correction all use it).
pub fn decay_add(v: &mut [f32], mu: f32, g: &[f32]) {
    debug_assert_eq!(v.len(), g.len());
    for (vi, &gi) in v.iter_mut().zip(g) {
        *vi = mu * *vi + gi;
    }
}

/// `out[i] = w[i] - step * (g[i] + mu * v[i])` — the Nesterov look-ahead
/// step, fused so no scratch buffer is needed.
pub fn nesterov_step(out: &mut [f32], w: &[f32], g: &[f32], v: &[f32], step: f32, mu: f32) {
    debug_assert_eq!(out.len(), w.len());
    debug_assert_eq!(out.len(), g.len());
    debug_assert_eq!(out.len(), v.len());
    for (((o, &wv), &gv), &vv) in out.iter_mut().zip(w).zip(g).zip(v) {
        *o = wv - step * (gv + mu * vv);
    }
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

/// Sequential left-to-right sum. **Order-pinned**: consumers on the
/// weight-hash path (softmax denominators, bias gradients, 1-bit scale)
/// rely on this exact association, so no backend reorders it.
pub fn reduce_sum(x: &[f32]) -> f32 {
    x.iter().sum()
}

/// Sequential sum of `|x[i]|` (1-bit scale, adaptive threshold).
/// Order-pinned like [`reduce_sum`].
pub fn reduce_abs_sum(x: &[f32]) -> f32 {
    x.iter().map(|v| v.abs()).sum()
}

/// Sequential sum of squares (L2 norms). Order-pinned.
pub fn reduce_sq_sum(x: &[f32]) -> f32 {
    x.iter().map(|&v| v * v).sum()
}

/// Sequential `f32::max` fold from `NEG_INFINITY` (softmax row max).
/// NaN elements are skipped (`f32::max` semantics).
pub fn reduce_max(x: &[f32]) -> f32 {
    x.iter().fold(f32::NEG_INFINITY, |m, &v| m.max(v))
}

/// `max(|x[i]|)` over the slice, `0.0` when empty; NaN elements are
/// skipped. Unlike the sums this reduction is order-independent (all
/// inputs are non-negative after `abs`), so the SIMD path can and does
/// reproduce it bit-exactly.
pub fn reduce_max_abs(x: &[f32]) -> f32 {
    x.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// Dot product in **striped order** (the kernel layer's documented
/// reduction order for `dot`): eight interleaved partial sums over the
/// 8-aligned prefix, combined pairwise, then a sequential tail. This is
/// the natural AVX2 accumulation shape; the scalar reference implements
/// the same order so both paths agree bitwise. See the module docs of
/// [`super`] for why `dot` is *not* sequential-order.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0.0f32; 8];
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
        for l in 0..8 {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let mut acc = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for (&av, &bv) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        acc += av * bv;
    }
    acc
}

// ---------------------------------------------------------------------------
// GEMM row-block microkernels
// ---------------------------------------------------------------------------
// All three operate on a block of output rows (`rows`) whose storage is
// `c_chunk` (so the rayon splitter can hand out disjoint row bands). The
// accumulation order per output element is strictly increasing `p`, and
// `a` elements equal to 0.0 skip their contribution entirely — both are
// load-bearing for bit-identity (skipping avoids `-0.0 + 0.0` flips on
// ReLU-sparse activations).

/// `C[rows, n] += A[rows, k] · B[k, n]` (ikj order).
pub fn gemm_block(
    a: &[f32],
    b: &[f32],
    rows: Range<usize>,
    c_chunk: &mut [f32],
    k: usize,
    n: usize,
) {
    for (ri, i) in rows.enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c_chunk[ri * n..(ri + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// `C[rows, n] += A[rows, k] · B[n, k]ᵀ` (sequential dot per output).
pub fn gemm_nt_block(
    a: &[f32],
    b: &[f32],
    rows: Range<usize>,
    c_chunk: &mut [f32],
    k: usize,
    n: usize,
) {
    for (ri, i) in rows.enumerate() {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c_chunk[ri * n..(ri + 1) * n];
        for (j, cv) in c_row.iter_mut().enumerate() {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

/// `C[rows, n] += A[k, m]ᵀ · B[k, n]` (strided A reads, ikj order).
pub fn gemm_tn_block(
    a: &[f32],
    b: &[f32],
    rows: Range<usize>,
    c_chunk: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    for (ri, i) in rows.enumerate() {
        let c_row = &mut c_chunk[ri * n..(ri + 1) * n];
        for p in 0..k {
            let av = a[p * m + i];
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Bit-packing
// ---------------------------------------------------------------------------

/// Pack 2-bit symbols (values 0..=3) four per byte, little-end first
/// (symbol `i` at bits `2*(i%4)`). `out.len()` must be
/// `symbols.len().div_ceil(4)`; it is overwritten.
pub fn pack_2bit(symbols: &[u8], out: &mut [u8]) {
    debug_assert_eq!(out.len(), symbols.len().div_ceil(4));
    out.fill(0);
    for (i, &s) in symbols.iter().enumerate() {
        debug_assert!(s < 4, "2-bit symbol out of range");
        out[i / 4] |= (s & 0b11) << (2 * (i % 4));
    }
}

/// Unpack `out.len()` 2-bit symbols from `bytes` (inverse of
/// [`pack_2bit`]).
pub fn unpack_2bit(bytes: &[u8], out: &mut [u8]) {
    debug_assert!(bytes.len() * 4 >= out.len());
    for (i, o) in out.iter_mut().enumerate() {
        *o = (bytes[i / 4] >> (2 * (i % 4))) & 0b11;
    }
}

/// Pack booleans eight per byte, little-end first. `out.len()` must be
/// `bits.len().div_ceil(8)`; it is overwritten.
pub fn pack_1bit(bits: &[bool], out: &mut [u8]) {
    debug_assert_eq!(out.len(), bits.len().div_ceil(8));
    out.fill(0);
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
}

/// Unpack `out.len()` booleans from `bytes` (inverse of [`pack_1bit`]).
pub fn unpack_1bit(bytes: &[u8], out: &mut [bool]) {
    debug_assert!(bytes.len() * 8 >= out.len());
    for (i, o) in out.iter_mut().enumerate() {
        *o = (bytes[i / 8] >> (i % 8)) & 1 == 1;
    }
}

// ---------------------------------------------------------------------------
// Quantizer scans
// ---------------------------------------------------------------------------

/// 2-bit threshold scan with fused residual update (MXNet `2bit`
/// semantics): for `x = grad[i] + res[i]`, emit symbol 1 and quantum
/// `+thr` when `x >= thr`, symbol 2 and `-thr` when `x <= -thr`, else
/// symbol 0 and quantum `0.0`; store `res[i] = x - q`. NaN inputs fail
/// both comparisons and fall through to symbol 0.
pub fn threshold_scan_residual(grad: &[f32], thr: f32, symbols: &mut [u8], res: &mut [f32]) {
    debug_assert_eq!(grad.len(), symbols.len());
    debug_assert_eq!(grad.len(), res.len());
    for ((s, &g), r) in symbols.iter_mut().zip(grad).zip(res.iter_mut()) {
        let x = g + *r;
        let q = if x >= thr {
            *s = 1;
            thr
        } else if x <= -thr {
            *s = 2;
            -thr
        } else {
            *s = 0;
            0.0
        };
        *r = x - q;
    }
}

/// [`threshold_scan_residual`] for a pre-corrected input: scans `x =
/// corrected[i]` directly and writes the remainder into `res` (used by
/// the adaptive codec, whose threshold depends on `corrected` as a
/// whole).
pub fn threshold_scan_store(corrected: &[f32], thr: f32, symbols: &mut [u8], res: &mut [f32]) {
    debug_assert_eq!(corrected.len(), symbols.len());
    debug_assert_eq!(corrected.len(), res.len());
    for ((s, &x), r) in symbols.iter_mut().zip(corrected).zip(res.iter_mut()) {
        let q = if x >= thr {
            *s = 1;
            thr
        } else if x <= -thr {
            *s = 2;
            -thr
        } else {
            *s = 0;
            0.0
        };
        *r = x - q;
    }
}

/// Residual-free 2-bit threshold scan (the error-feedback ablation):
/// symbols only, no state update.
pub fn threshold_scan_plain(grad: &[f32], thr: f32, symbols: &mut [u8]) {
    debug_assert_eq!(grad.len(), symbols.len());
    for (s, &g) in symbols.iter_mut().zip(grad) {
        *s = if g >= thr {
            1
        } else if g <= -thr {
            2
        } else {
            0
        };
    }
}

/// 1-bit sign scan with residual update: `bits[i] = x >= 0.0` (NaN →
/// `false`), quantum `±scale`, `res[i] = x - q`.
pub fn sign_residual(corrected: &[f32], scale: f32, bits: &mut [bool], res: &mut [f32]) {
    debug_assert_eq!(corrected.len(), bits.len());
    debug_assert_eq!(corrected.len(), res.len());
    for ((bi, &x), r) in bits.iter_mut().zip(corrected).zip(res.iter_mut()) {
        let b = x >= 0.0;
        *bi = b;
        let q = if b { scale } else { -scale };
        *r = x - q;
    }
}

// ---------------------------------------------------------------------------
// Decode-accumulate (server aggregation hot loop)
// ---------------------------------------------------------------------------

/// Decode 2-bit symbols straight into an accumulator: `out[i] += thr`
/// for code 1, `out[i] -= thr` for code 2, **no write at all** for code
/// 0 (adding `0.0` would flip `-0.0` accumulator slots). `out.len()`
/// elements are decoded from `packed`.
pub fn unpack_2bit_add(packed: &[u8], thr: f32, out: &mut [f32]) {
    debug_assert!(packed.len() * 4 >= out.len());
    for (i, o) in out.iter_mut().enumerate() {
        match (packed[i / 4] >> (2 * (i % 4))) & 0b11 {
            1 => *o += thr,
            2 => *o -= thr,
            _ => {}
        }
    }
}

/// Decode 1-bit signs straight into an accumulator: `out[i] += scale`
/// for a set bit, `out[i] -= scale` otherwise (every element is
/// touched, matching the historical decoder).
pub fn unpack_1bit_add(signs: &[u8], scale: f32, out: &mut [f32]) {
    debug_assert!(signs.len() * 8 >= out.len());
    for (i, o) in out.iter_mut().enumerate() {
        *o += if (signs[i / 8] >> (i % 8)) & 1 == 1 {
            scale
        } else {
            -scale
        };
    }
}
