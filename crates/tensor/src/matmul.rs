//! Matrix multiplication entry points.
//!
//! The actual microkernels (register-blocked AVX2 + scalar reference,
//! rayon row-block tiling) live in [`crate::kernel`]; this module keeps
//! the shape-checked `Tensor` methods and the raw-slice `gemm*` API
//! other crates already use.
//!
//! Three layout variants cover everything the NN backward passes need
//! without materializing transposes:
//! * `matmul`    — `A[m,k] · B[k,n]`
//! * `matmul_nt` — `A[m,k] · B[n,k]ᵀ`  (e.g. `dX = dY · Wᵀ`)
//! * `matmul_tn` — `A[k,m]ᵀ · B[k,n]`  (e.g. `dW = Xᵀ · dY`)

use crate::kernel;
use crate::tensor::Tensor;

impl Tensor {
    /// `self[m,k] · other[k,n] -> [m,n]`.
    ///
    /// # Panics
    /// Panics if either operand is not 2-D or the inner dimensions differ.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        kernel::gemm(self.data(), other.data(), out.data_mut(), m, k, n);
        out
    }

    /// `self[m,k] · other[n,k]ᵀ -> [m,n]` — multiplies by the transpose of
    /// `other` without materializing it.
    pub fn matmul_nt(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_nt lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul_nt rhs must be 2-D");
        let (m, k) = (self.shape()[0], self.shape()[1]);
        let (n, k2) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        kernel::gemm_nt(self.data(), other.data(), out.data_mut(), m, k, n);
        out
    }

    /// `self[k,m]ᵀ · other[k,n] -> [m,n]` — multiplies by the transpose of
    /// `self` without materializing it.
    pub fn matmul_tn(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.ndim(), 2, "matmul_tn lhs must be 2-D");
        assert_eq!(other.ndim(), 2, "matmul_tn rhs must be 2-D");
        let (k, m) = (self.shape()[0], self.shape()[1]);
        let (k2, n) = (other.shape()[0], other.shape()[1]);
        assert_eq!(k, k2, "inner dimension mismatch: {k} vs {k2}");
        let mut out = Tensor::zeros(&[m, n]);
        kernel::gemm_tn(self.data(), other.data(), out.data_mut(), m, k, n);
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::rng::SmallRng64;
    use crate::tensor::Tensor;

    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.shape()[0], a.shape()[1]);
        let n = b.shape()[1];
        let mut c = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                *c.at_mut(&[i, j]) = acc;
            }
        }
        c
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.data().iter().zip(b.data()) {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{x} vs {y}"
            );
        }
    }

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]);
        assert_eq!(a.matmul(&b).data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = SmallRng64::new(1);
        let a = Tensor::randn(&[5, 5], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[5, 5]);
        for i in 0..5 {
            *eye.at_mut(&[i, i]) = 1.0;
        }
        assert_close(&a.matmul(&eye), &a, 1e-6);
        assert_close(&eye.matmul(&a), &a, 1e-6);
    }

    #[test]
    fn matches_naive_on_random_sizes() {
        let mut rng = SmallRng64::new(2);
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (17, 9, 13),
            (64, 64, 64),
            (70, 33, 41),
        ] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            assert_close(&a.matmul(&b), &naive(&a, &b), 1e-4);
        }
    }

    #[test]
    fn nt_variant_matches_explicit_transpose() {
        let mut rng = SmallRng64::new(3);
        let a = Tensor::randn(&[13, 9], 1.0, &mut rng);
        let b = Tensor::randn(&[11, 9], 1.0, &mut rng);
        assert_close(&a.matmul_nt(&b), &a.matmul(&b.transpose2d()), 1e-4);
    }

    #[test]
    fn tn_variant_matches_explicit_transpose() {
        let mut rng = SmallRng64::new(4);
        let a = Tensor::randn(&[9, 13], 1.0, &mut rng);
        let b = Tensor::randn(&[9, 11], 1.0, &mut rng);
        assert_close(&a.matmul_tn(&b), &a.transpose2d().matmul(&b), 1e-4);
    }

    #[test]
    fn large_parallel_path_matches_naive() {
        // Big enough to cross the kernel's parallel threshold and
        // exercise the rayon row-block split.
        let mut rng = SmallRng64::new(5);
        let a = Tensor::randn(&[128, 96], 1.0, &mut rng);
        let b = Tensor::randn(&[96, 80], 1.0, &mut rng);
        assert_close(&a.matmul(&b), &naive(&a, &b), 1e-3);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        a.matmul(&b);
    }
}
