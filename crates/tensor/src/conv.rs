//! im2col / col2im kernels for 2-D convolution.
//!
//! Convolution forward/backward in `cdsgd-nn` is expressed as matrix
//! multiplication over "column" matrices: for each sample, `im2col` unrolls
//! every receptive field into a column of shape `C·KH·KW`, so that
//! `W[F, C·KH·KW] · col = out[F, OH·OW]`. `col2im` is its adjoint and is
//! used to push gradients back to the input image.

use crate::kernel;
use crate::tensor::Tensor;

/// Geometry of a conv2d application: input/kernel/stride/padding sizes and
/// the derived output size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Input channels.
    pub c: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl Conv2dGeom {
    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Rows of the column matrix: `C·KH·KW`.
    pub fn col_rows(&self) -> usize {
        self.c * self.kh * self.kw
    }

    /// Columns of the column matrix: `OH·OW`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Validate that the geometry is consistent (kernel fits, stride > 0).
    pub fn validate(&self) {
        assert!(self.stride > 0, "stride must be positive");
        assert!(
            self.h + 2 * self.pad >= self.kh && self.w + 2 * self.pad >= self.kw,
            "kernel {}x{} larger than padded input {}x{}",
            self.kh,
            self.kw,
            self.h + 2 * self.pad,
            self.w + 2 * self.pad
        );
    }
}

/// Unroll a single image `[C,H,W]` (given as a flat slice) into a column
/// matrix `[C·KH·KW, OH·OW]`.
pub fn im2col(img: &[f32], g: &Conv2dGeom) -> Tensor {
    g.validate();
    assert_eq!(img.len(), g.c * g.h * g.w, "image size mismatch");
    let (oh, ow) = (g.out_h(), g.out_w());
    let mut col = Tensor::zeros(&[g.col_rows(), g.col_cols()]);
    let out = col.data_mut();
    let cols = oh * ow;
    for c in 0..g.c {
        let img_c = &img[c * g.h * g.w..(c + 1) * g.h * g.w];
        for ki in 0..g.kh {
            for kj in 0..g.kw {
                let row = (c * g.kh + ki) * g.kw + kj;
                let out_row = &mut out[row * cols..(row + 1) * cols];
                for oi in 0..oh {
                    let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                    if ii < 0 || ii >= g.h as isize {
                        continue; // zero padding — row already zeroed
                    }
                    let src_row = &img_c[ii as usize * g.w..(ii as usize + 1) * g.w];
                    if g.stride == 1 {
                        // jj = oj + (kj - pad): the valid oj range maps to a
                        // contiguous span of the source row — one memcpy.
                        let d = kj as isize - g.pad as isize;
                        let lo = (-d).max(0) as usize;
                        let hi = (g.w as isize - d).clamp(lo as isize, ow as isize) as usize;
                        if lo < hi {
                            let s = (lo as isize + d) as usize;
                            out_row[oi * ow + lo..oi * ow + hi]
                                .copy_from_slice(&src_row[s..s + (hi - lo)]);
                        }
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                        if jj < 0 || jj >= g.w as isize {
                            continue;
                        }
                        out_row[oi * ow + oj] = src_row[jj as usize];
                    }
                }
            }
        }
    }
    col
}

/// Adjoint of [`im2col`]: scatter-add a column matrix back into an image
/// buffer `[C,H,W]` (flat slice, must be pre-zeroed by the caller if a
/// fresh gradient is wanted; contributions are accumulated).
pub fn col2im(col: &Tensor, g: &Conv2dGeom, img: &mut [f32]) {
    g.validate();
    assert_eq!(img.len(), g.c * g.h * g.w, "image size mismatch");
    assert_eq!(
        col.shape(),
        &[g.col_rows(), g.col_cols()],
        "column shape mismatch"
    );
    let (oh, ow) = (g.out_h(), g.out_w());
    let data = col.data();
    let cols = oh * ow;
    for c in 0..g.c {
        let img_c = &mut img[c * g.h * g.w..(c + 1) * g.h * g.w];
        for ki in 0..g.kh {
            for kj in 0..g.kw {
                let row = (c * g.kh + ki) * g.kw + kj;
                let col_row = &data[row * cols..(row + 1) * cols];
                for oi in 0..oh {
                    let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                    if ii < 0 || ii >= g.h as isize {
                        continue;
                    }
                    let dst_row = &mut img_c[ii as usize * g.w..(ii as usize + 1) * g.w];
                    if g.stride == 1 {
                        // Adjoint of the im2col fast path: contiguous
                        // accumulate through the vectorized kernel.
                        let d = kj as isize - g.pad as isize;
                        let lo = (-d).max(0) as usize;
                        let hi = (g.w as isize - d).clamp(lo as isize, ow as isize) as usize;
                        if lo < hi {
                            let s = (lo as isize + d) as usize;
                            kernel::add_assign(
                                &mut dst_row[s..s + (hi - lo)],
                                &col_row[oi * ow + lo..oi * ow + hi],
                            );
                        }
                        continue;
                    }
                    for oj in 0..ow {
                        let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                        if jj < 0 || jj >= g.w as isize {
                            continue;
                        }
                        dst_row[jj as usize] += col_row[oi * ow + oj];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SmallRng64;

    fn geom(c: usize, h: usize, w: usize, k: usize, stride: usize, pad: usize) -> Conv2dGeom {
        Conv2dGeom {
            c,
            h,
            w,
            kh: k,
            kw: k,
            stride,
            pad,
        }
    }

    #[test]
    fn output_sizes() {
        let g = geom(1, 28, 28, 5, 1, 0);
        assert_eq!((g.out_h(), g.out_w()), (24, 24));
        let g = geom(3, 32, 32, 3, 1, 1);
        assert_eq!((g.out_h(), g.out_w()), (32, 32));
        let g = geom(3, 32, 32, 3, 2, 1);
        assert_eq!((g.out_h(), g.out_w()), (16, 16));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1x1 kernel, stride 1, no pad: col matrix equals the image itself.
        let g = geom(2, 3, 3, 1, 1, 0);
        let img: Vec<f32> = (0..18).map(|x| x as f32).collect();
        let col = im2col(&img, &g);
        assert_eq!(col.shape(), &[2, 9]);
        assert_eq!(col.data(), img.as_slice());
    }

    #[test]
    fn im2col_known_patch() {
        // 2x2 image, 2x2 kernel => single output position listing the patch.
        let g = geom(1, 2, 2, 2, 1, 0);
        let img = vec![1., 2., 3., 4.];
        let col = im2col(&img, &g);
        assert_eq!(col.shape(), &[4, 1]);
        assert_eq!(col.data(), &[1., 2., 3., 4.]);
    }

    #[test]
    fn padding_produces_zero_border() {
        let g = geom(1, 1, 1, 3, 1, 1);
        let img = vec![5.0];
        let col = im2col(&img, &g);
        assert_eq!(col.shape(), &[9, 1]);
        // Only the center tap sees the pixel.
        let mut expect = vec![0.0; 9];
        expect[4] = 5.0;
        assert_eq!(col.data(), expect.as_slice());
    }

    #[test]
    fn conv_via_im2col_matches_direct() {
        // Direct convolution vs im2col + matmul on a random case.
        let mut rng = SmallRng64::new(9);
        let g = geom(2, 6, 7, 3, 2, 1);
        let f = 4; // output channels
        let img = Tensor::randn(&[g.c * g.h * g.w], 1.0, &mut rng);
        let weight = Tensor::randn(&[f, g.col_rows()], 0.5, &mut rng);
        let col = im2col(img.data(), &g);
        let out = weight.matmul(&col); // [F, OH*OW]

        let (oh, ow) = (g.out_h(), g.out_w());
        for fo in 0..f {
            for oi in 0..oh {
                for oj in 0..ow {
                    let mut acc = 0.0f32;
                    for c in 0..g.c {
                        for ki in 0..g.kh {
                            for kj in 0..g.kw {
                                let ii = (oi * g.stride + ki) as isize - g.pad as isize;
                                let jj = (oj * g.stride + kj) as isize - g.pad as isize;
                                if ii < 0 || jj < 0 || ii >= g.h as isize || jj >= g.w as isize {
                                    continue;
                                }
                                let iv =
                                    img.data()[c * g.h * g.w + ii as usize * g.w + jj as usize];
                                let wv = weight.at(&[fo, (c * g.kh + ki) * g.kw + kj]);
                                acc += iv * wv;
                            }
                        }
                    }
                    let got = out.at(&[fo, oi * ow + oj]);
                    assert!((acc - got).abs() < 1e-4, "{acc} vs {got}");
                }
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property needed for a correct conv backward pass.
        let mut rng = SmallRng64::new(10);
        let g = geom(3, 5, 6, 3, 1, 1);
        let x = Tensor::randn(&[g.c * g.h * g.w], 1.0, &mut rng);
        let y = Tensor::randn(&[g.col_rows(), g.col_cols()], 1.0, &mut rng);

        let lhs: f32 = im2col(x.data(), &g)
            .data()
            .iter()
            .zip(y.data())
            .map(|(a, b)| a * b)
            .sum();

        let mut back = vec![0.0f32; x.len()];
        col2im(&y, &g, &mut back);
        let rhs: f32 = x.data().iter().zip(&back).map(|(a, b)| a * b).sum();

        assert!(
            (lhs - rhs).abs() < 1e-3 * (1.0 + lhs.abs()),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn oversized_kernel_panics() {
        let g = geom(1, 2, 2, 5, 1, 0);
        im2col(&[0.0; 4], &g);
    }
}
