//! Shared construction for the multi-process deployment binaries.
//!
//! The `psd` (server shard) and `worker` binaries run in separate OS
//! processes but must agree *exactly* on the model initialisation, the
//! dataset, and the key partitioning — any divergence and the TCP run no
//! longer reproduces the in-process one. Building all three from string
//! specs in one place makes that agreement structural: every process
//! (and the integration tests) calls these helpers with the same flags.

use cdsgd_data::{synth, toy, Dataset};
use cdsgd_nn::{models, Sequential};
use cdsgd_tensor::SmallRng64;

/// Value of `--name <value>` from the process arguments, if present.
pub fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{name}"))
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parsed `--name <value>`, or `default` when the flag is absent.
/// Exits with status 2 on an unparsable value.
pub fn arg_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    arg(name).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{name}: {v}");
            std::process::exit(2)
        })
    })
}

/// Build a model from a spec string: `mlp:8,32,4` (layer sizes) or
/// `lenet5[:classes]`. Deterministic in the RNG, so every process seeded
/// identically constructs bit-identical weights.
pub fn build_model(spec: &str, rng: &mut SmallRng64) -> Sequential {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    match kind {
        "mlp" => {
            let sizes: Vec<usize> = rest
                .split(',')
                .map(|s| s.trim().parse().expect("mlp layer size"))
                .collect();
            assert!(sizes.len() >= 2, "mlp spec needs at least in,out sizes");
            models::mlp(&sizes, rng)
        }
        "lenet5" => {
            let classes = if rest.is_empty() {
                10
            } else {
                rest.parse().expect("lenet5 class count")
            };
            models::lenet5(classes, rng)
        }
        other => panic!("unknown model spec {other} (mlp:<sizes>|lenet5[:classes])"),
    }
}

/// The initial global weights for `spec` at `seed` — what the server
/// shards load and every worker replica starts from.
pub fn initial_weights(spec: &str, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SmallRng64::new(seed);
    let mut model = build_model(spec, &mut rng);
    model.export_params()
}

/// Build the `(train, test)` datasets every process agrees on.
pub fn build_dataset(name: &str, samples: usize, seed: u64) -> (Dataset, Dataset) {
    let data = match name {
        "blobs" => toy::gaussian_blobs(samples, 8, 4, 0.6, seed),
        "mnist" => synth::mnist_like(samples, seed),
        "cifar" => synth::cifar_like(samples, seed),
        other => panic!("unknown dataset {other} (blobs|mnist|cifar)"),
    };
    data.split(0.85)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_specs_are_deterministic() {
        let a = initial_weights("mlp:8,32,4", 5);
        let b = initial_weights("mlp:8,32,4", 5);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = initial_weights("mlp:8,32,4", 6);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn datasets_are_deterministic() {
        let (tr1, te1) = build_dataset("blobs", 100, 7);
        let (tr2, te2) = build_dataset("blobs", 100, 7);
        assert_eq!(tr1.len(), tr2.len());
        assert_eq!(te1.len(), te2.len());
    }

    #[test]
    #[should_panic(expected = "unknown model spec")]
    fn bad_model_spec_panics() {
        initial_weights("transformer:96", 1);
    }
}
