//! Shared construction for the multi-process deployment binaries.
//!
//! The `psd` (server shard) and `worker` binaries run in separate OS
//! processes but must agree *exactly* on the model initialisation, the
//! dataset, and the key partitioning — any divergence and the TCP run no
//! longer reproduces the in-process one. Building all three from string
//! specs in one place makes that agreement structural: every process
//! (and the integration tests) calls these helpers with the same flags.

use cd_sgd::{Algorithm, JsonlSink, ServerOptKind, Telemetry, Topology};
use cdsgd_data::{synth, toy, Dataset};
use cdsgd_nn::{models, Sequential};
use cdsgd_tensor::SmallRng64;

/// Value of `--name <value>` from the process arguments, if present.
pub fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == &format!("--{name}"))
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parsed `--name <value>`, or `default` when the flag is absent.
/// Exits with status 2 on an unparsable value.
pub fn arg_or<T: std::str::FromStr>(name: &str, default: T) -> T {
    arg(name).map_or(default, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --{name}: {v}");
            std::process::exit(2)
        })
    })
}

/// Is the boolean switch `--name` present?
pub fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == format!("--{name}"))
}

/// Telemetry from the shared `--trace <path>` flag: a [`JsonlSink`]
/// writing one event per line when the flag is present, disabled (and
/// therefore zero-cost) when it is absent. All three deployment
/// binaries accept the flag through this one helper, so a trace from
/// any process parses with the same [`cd_sgd::telemetry`] event model.
/// Exits with status 2 when the file cannot be created — a requested
/// trace that silently vanishes is worse than no trace.
pub fn trace_telemetry() -> Telemetry {
    match arg("trace") {
        None => Telemetry::disabled(),
        Some(path) => match JsonlSink::create(&path) {
            Ok(sink) => Telemetry::new(std::sync::Arc::new(sink)),
            Err(e) => {
                eprintln!("cannot create --trace file {path}: {e}");
                std::process::exit(2)
            }
        },
    }
}

/// Per-binary defaults for the algorithm knobs consumed by
/// [`parse_algorithm`] — the front ends historically default differently
/// (`cdsgd` uses the paper's MNIST settings, `worker` the integration
/// tests' toy settings), so the shared parser takes them as input.
#[derive(Clone, Copy, Debug)]
pub struct AlgoDefaults {
    /// Default `--local-lr` (eq. 11's lr_loc).
    pub local_lr: f32,
    /// Default `--threshold` (2-bit quantization α).
    pub threshold: f32,
    /// Default `--k` (CD-SGD correction period).
    pub k: usize,
    /// Default `--warmup` (CD-SGD warm-up iterations).
    pub warmup: usize,
}

/// `--name <value>` within an explicit argument slice (the testable
/// counterpart of [`arg`]).
fn lookup<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == &format!("--{name}"))
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Parsed `--name <value>` from an argument slice, or `default` when
/// absent; a malformed value is a usage `Err`, never a panic.
fn lookup_or<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> Result<T, String> {
    match lookup(args, name) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value for --{name}: {v}")),
    }
}

/// Parse `--algo` plus its knob flags (`--local-lr`, `--threshold`,
/// `--k`, `--warmup`, `--dc-lambda`, `--sync-period`, `--ef-momentum`)
/// from `args` into a validated [`Algorithm`]. `Err` carries a usage
/// message for stderr; callers exit 2 on it. The accepted names cover
/// every variant the strategy layer implements.
pub fn parse_algorithm(args: &[String], defaults: &AlgoDefaults) -> Result<Algorithm, String> {
    let local_lr: f32 = lookup_or(args, "local-lr", defaults.local_lr)?;
    let threshold: f32 = lookup_or(args, "threshold", defaults.threshold)?;
    let k: usize = lookup_or(args, "k", defaults.k)?;
    let warmup: usize = lookup_or(args, "warmup", defaults.warmup)?;
    let name = lookup(args, "algo").unwrap_or("cdsgd");
    let algo = match name {
        "ssgd" => Algorithm::SSgd,
        "odsgd" => Algorithm::OdSgd { local_lr },
        "bitsgd" => Algorithm::BitSgd { threshold },
        "cdsgd" => Algorithm::CdSgd {
            local_lr,
            codec: cd_sgd::Codec::TwoBit { threshold },
            k,
            warmup,
            dc_lambda: lookup_or(args, "dc-lambda", 0.0)?,
        },
        "localsgd" => Algorithm::LocalSgd {
            local_lr,
            sync_period: lookup_or(args, "sync-period", 4)?,
        },
        "arsgd" => Algorithm::ArSgd,
        "efsgd" => Algorithm::EfSgd {
            momentum: lookup_or(args, "ef-momentum", 0.9)?,
        },
        "ecqsgd" => Algorithm::EcqSgd {
            threshold,
            alpha: lookup_or(args, "ecq-alpha", 1.0)?,
            beta: lookup_or(args, "ecq-beta", 1.0)?,
        },
        other => {
            return Err(format!(
                "unknown algorithm {other} (ssgd|odsgd|bitsgd|cdsgd|localsgd|arsgd|efsgd|ecqsgd)"
            ))
        }
    };
    algo.validate()
        .map_err(|e| format!("invalid --algo {name}: {e}"))?;
    Ok(algo)
}

/// Parse `--topology <ps|ring|tree|decentralized>` into a
/// [`cd_sgd::Topology`]. The decentralized mode also consumes `--codec
/// <2bit|1bit|topk|qsgd>` (default 2bit) and its knobs (`--threshold`,
/// `--topk-ratio`, `--qsgd-levels`) for the model-difference compressor.
/// Absent flag means [`Topology::Ps`] — the pre-topology default, byte
/// identical to older deployments. `Err` carries a usage message for
/// stderr; callers exit 2 on it.
pub fn parse_topology(args: &[String], defaults: &AlgoDefaults) -> Result<Topology, String> {
    let Some(name) = lookup(args, "topology") else {
        return Ok(Topology::Ps);
    };
    Ok(match name {
        "ps" => Topology::Ps,
        "ring" => Topology::Ring,
        "tree" => Topology::Tree,
        "decentralized" => {
            let codec = match lookup(args, "codec").unwrap_or("2bit") {
                "2bit" => cd_sgd::Codec::TwoBit {
                    threshold: lookup_or(args, "threshold", defaults.threshold)?,
                },
                "1bit" => cd_sgd::Codec::OneBit,
                "topk" => cd_sgd::Codec::TopK {
                    ratio: lookup_or(args, "topk-ratio", 0.01)?,
                },
                "qsgd" => cd_sgd::Codec::Qsgd {
                    levels: lookup_or(args, "qsgd-levels", 4)?,
                    seed: lookup_or(args, "qsgd-seed", 7)?,
                },
                other => return Err(format!("unknown codec {other} (2bit|1bit|topk|qsgd)")),
            };
            Topology::Decentralized { codec }
        }
        other => {
            return Err(format!(
                "unknown topology {other} (ps|ring|tree|decentralized)"
            ))
        }
    })
}

/// Parse elastic-membership flags into a [`cdsgd_ps::ElasticConfig`]:
/// `--min-quorum <n>` (fewest active workers the server keeps serving
/// with) and `--heartbeat-ms <ms>` (evict a worker silent that long).
/// Either flag alone enables elastic membership; neither present means
/// fixed membership (`Ok(None)`), keeping default runs bit-identical.
/// `Err` carries a usage message for stderr; callers exit 2 on it.
pub fn parse_elastic(args: &[String]) -> Result<Option<cdsgd_ps::ElasticConfig>, String> {
    let has_quorum = lookup(args, "min-quorum").is_some();
    let has_heartbeat = lookup(args, "heartbeat-ms").is_some();
    if !has_quorum && !has_heartbeat {
        return Ok(None);
    }
    let min_quorum: usize = lookup_or(args, "min-quorum", 1)?;
    if min_quorum == 0 {
        return Err("--min-quorum must be at least 1".into());
    }
    let mut elastic = cdsgd_ps::ElasticConfig::new(min_quorum);
    if has_heartbeat {
        let ms: u64 = lookup_or(args, "heartbeat-ms", 0)?;
        if ms == 0 {
            return Err("--heartbeat-ms must be a positive number of milliseconds".into());
        }
        elastic = elastic.with_heartbeat_timeout(std::time::Duration::from_millis(ms));
    }
    Ok(Some(elastic))
}

/// Parse worker auto-reconnect flags into a
/// [`cdsgd_net::ReconnectConfig`]: `--reconnect-retries <n>` (redial
/// attempts per link drop) and `--reconnect-backoff-ms <ms>` (base of
/// the exponential backoff between attempts, doubled per attempt and
/// capped at [`cdsgd_net::RECONNECT_BACKOFF_CAP`]). Either flag alone
/// arms reconnection; neither present means the machinery is never
/// built (`Ok(None)`), keeping default runs bit-identical. `Err`
/// carries a usage message for stderr; callers exit 2 on it.
pub fn parse_reconnect(args: &[String]) -> Result<Option<cdsgd_net::ReconnectConfig>, String> {
    let has_retries = lookup(args, "reconnect-retries").is_some();
    let has_backoff = lookup(args, "reconnect-backoff-ms").is_some();
    if !has_retries && !has_backoff {
        return Ok(None);
    }
    let defaults = cdsgd_net::ReconnectConfig::default();
    let retries: u32 = lookup_or(args, "reconnect-retries", defaults.retries)?;
    if retries == 0 {
        return Err("--reconnect-retries must be at least 1".into());
    }
    let ms: u64 = lookup_or(
        args,
        "reconnect-backoff-ms",
        defaults.backoff.as_millis() as u64,
    )?;
    if ms == 0 {
        return Err("--reconnect-backoff-ms must be a positive number of milliseconds".into());
    }
    Ok(Some(cdsgd_net::ReconnectConfig {
        retries,
        backoff: std::time::Duration::from_millis(ms),
    }))
}

/// Recovery flags shared by the server-shard front ends:
/// `--checkpoint-dir <dir>` names the durable snapshot directory,
/// `--checkpoint-every <rounds>` schedules writes at round boundaries
/// (without it the shard only snapshots on demand), and `--resume` asks
/// the shard to restart from the latest complete checkpoint set.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RecoveryFlags {
    /// `--checkpoint-dir`, when present.
    pub dir: Option<std::path::PathBuf>,
    /// `--checkpoint-every`, when present (validated positive).
    pub every: Option<u64>,
    /// `--resume` switch.
    pub resume: bool,
}

/// Parse [`RecoveryFlags`] out of `args`. Both `--checkpoint-every` and
/// `--resume` need `--checkpoint-dir` to mean anything, so either
/// without it is an error rather than a silently inert flag.
pub fn parse_recovery(args: &[String]) -> Result<RecoveryFlags, String> {
    let dir = lookup(args, "checkpoint-dir").map(std::path::PathBuf::from);
    let every: Option<u64> = match lookup(args, "checkpoint-every") {
        None => None,
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("invalid value for --checkpoint-every: {v}"))?,
        ),
    };
    let resume = args.iter().any(|a| a == "--resume");
    if every == Some(0) {
        return Err("--checkpoint-every must be at least 1 round".into());
    }
    if dir.is_none() && (every.is_some() || resume) {
        return Err("--checkpoint-every and --resume need --checkpoint-dir".into());
    }
    Ok(RecoveryFlags { dir, every, resume })
}

/// Parse the server-side optimizer from `--momentum <μ>` and the
/// `--nesterov` switch in `args`: no momentum means plain SGD (the
/// paper's eq. 10), a positive momentum selects heavy-ball, and
/// `--nesterov` upgrades it to the look-ahead form.
pub fn parse_server_opt(args: &[String]) -> Result<ServerOptKind, String> {
    let momentum: f32 = lookup_or(args, "momentum", 0.0)?;
    if !(0.0..1.0).contains(&momentum) {
        return Err(format!("--momentum must be in [0, 1), got {momentum}"));
    }
    let nesterov = args.iter().any(|a| a == "--nesterov");
    if nesterov {
        if momentum == 0.0 {
            return Err("--nesterov requires --momentum > 0".into());
        }
        Ok(ServerOptKind::Nesterov { momentum })
    } else if momentum > 0.0 {
        Ok(ServerOptKind::HeavyBall { momentum })
    } else {
        Ok(ServerOptKind::PlainSgd)
    }
}

/// Build a model from a spec string: `mlp:8,32,4` (layer sizes) or
/// `lenet5[:classes]`. Deterministic in the RNG, so every process seeded
/// identically constructs bit-identical weights.
pub fn build_model(spec: &str, rng: &mut SmallRng64) -> Sequential {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    match kind {
        "mlp" => {
            let sizes: Vec<usize> = rest
                .split(',')
                .map(|s| s.trim().parse().expect("mlp layer size"))
                .collect();
            assert!(sizes.len() >= 2, "mlp spec needs at least in,out sizes");
            models::mlp(&sizes, rng)
        }
        "lenet5" => {
            let classes = if rest.is_empty() {
                10
            } else {
                rest.parse().expect("lenet5 class count")
            };
            models::lenet5(classes, rng)
        }
        other => panic!("unknown model spec {other} (mlp:<sizes>|lenet5[:classes])"),
    }
}

/// The initial global weights for `spec` at `seed` — what the server
/// shards load and every worker replica starts from.
pub fn initial_weights(spec: &str, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = SmallRng64::new(seed);
    let mut model = build_model(spec, &mut rng);
    model.export_params()
}

/// Build the `(train, test)` datasets every process agrees on.
pub fn build_dataset(name: &str, samples: usize, seed: u64) -> (Dataset, Dataset) {
    let data = match name {
        "blobs" => toy::gaussian_blobs(samples, 8, 4, 0.6, seed),
        "mnist" => synth::mnist_like(samples, seed),
        "cifar" => synth::cifar_like(samples, seed),
        other => panic!("unknown dataset {other} (blobs|mnist|cifar)"),
    };
    data.split(0.85)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_specs_are_deterministic() {
        let a = initial_weights("mlp:8,32,4", 5);
        let b = initial_weights("mlp:8,32,4", 5);
        assert_eq!(a, b);
        assert!(!a.is_empty());
        let c = initial_weights("mlp:8,32,4", 6);
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn datasets_are_deterministic() {
        let (tr1, te1) = build_dataset("blobs", 100, 7);
        let (tr2, te2) = build_dataset("blobs", 100, 7);
        assert_eq!(tr1.len(), tr2.len());
        assert_eq!(te1.len(), te2.len());
    }

    #[test]
    #[should_panic(expected = "unknown model spec")]
    fn bad_model_spec_panics() {
        initial_weights("transformer:96", 1);
    }

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    const DEFAULTS: AlgoDefaults = AlgoDefaults {
        local_lr: 0.05,
        threshold: 0.05,
        k: 2,
        warmup: 3,
    };

    #[test]
    fn parse_algorithm_covers_every_variant() {
        for (args, expected) in [
            ("--algo ssgd", Algorithm::SSgd),
            (
                "--algo odsgd --local-lr 0.2",
                Algorithm::OdSgd { local_lr: 0.2 },
            ),
            (
                "--algo bitsgd --threshold 0.5",
                Algorithm::BitSgd { threshold: 0.5 },
            ),
            (
                "--algo cdsgd --k 4 --warmup 7",
                Algorithm::cd_sgd(0.05, 0.05, 4, 7),
            ),
            (
                "--algo cdsgd --dc-lambda 0.5",
                Algorithm::cd_sgd(0.05, 0.05, 2, 3).with_delay_compensation(0.5),
            ),
            (
                "--algo localsgd --sync-period 8",
                Algorithm::LocalSgd {
                    local_lr: 0.05,
                    sync_period: 8,
                },
            ),
            ("--algo arsgd", Algorithm::ArSgd),
            ("--algo efsgd", Algorithm::ef_sgd(0.9)),
            ("--algo efsgd --ef-momentum 0.5", Algorithm::ef_sgd(0.5)),
            ("--algo ecqsgd", Algorithm::ecq_sgd(0.05, 1.0, 1.0)),
            (
                "--algo ecqsgd --threshold 0.5 --ecq-alpha 0.9 --ecq-beta 0.8",
                Algorithm::ecq_sgd(0.5, 0.9, 0.8),
            ),
        ] {
            assert_eq!(
                parse_algorithm(&argv(args), &DEFAULTS).unwrap(),
                expected,
                "args: {args}"
            );
        }
        // No --algo falls back to the paper's algorithm.
        assert_eq!(
            parse_algorithm(&argv(""), &DEFAULTS).unwrap(),
            Algorithm::cd_sgd(0.05, 0.05, 2, 3)
        );
    }

    #[test]
    fn parse_algorithm_rejects_bad_input_without_panicking() {
        for args in [
            "--algo adamw",
            "--algo cdsgd --k zero",
            "--algo cdsgd --k 0",
            "--algo localsgd --sync-period 0",
            "--algo efsgd --ef-momentum 1.5",
            "--algo ecqsgd --ecq-beta 1.5",
            "--algo ssgd --local-lr fast",
        ] {
            let err = parse_algorithm(&argv(args), &DEFAULTS)
                .expect_err(&format!("args should fail: {args}"));
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn parse_topology_covers_every_variant() {
        use cd_sgd::Codec;
        for (args, expected) in [
            ("", Topology::Ps),
            ("--topology ps", Topology::Ps),
            ("--topology ring", Topology::Ring),
            ("--topology tree", Topology::Tree),
            (
                "--topology decentralized",
                Topology::Decentralized {
                    codec: Codec::TwoBit { threshold: 0.05 },
                },
            ),
            (
                "--topology decentralized --codec 2bit --threshold 0.5",
                Topology::Decentralized {
                    codec: Codec::TwoBit { threshold: 0.5 },
                },
            ),
            (
                "--topology decentralized --codec 1bit",
                Topology::Decentralized {
                    codec: Codec::OneBit,
                },
            ),
            (
                "--topology decentralized --codec topk --topk-ratio 0.25",
                Topology::Decentralized {
                    codec: Codec::TopK { ratio: 0.25 },
                },
            ),
            (
                "--topology decentralized --codec qsgd --qsgd-levels 8",
                Topology::Decentralized {
                    codec: Codec::Qsgd { levels: 8, seed: 7 },
                },
            ),
        ] {
            assert_eq!(
                parse_topology(&argv(args), &DEFAULTS).unwrap(),
                expected,
                "args: {args}"
            );
        }
        for args in [
            "--topology mesh",
            "--topology decentralized --codec terngrad",
            "--topology decentralized --codec topk --topk-ratio lots",
        ] {
            let err = parse_topology(&argv(args), &DEFAULTS)
                .expect_err(&format!("args should fail: {args}"));
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn parse_elastic_maps_flags() {
        use cdsgd_ps::ElasticConfig;
        use std::time::Duration;
        // No membership flags: fixed membership, bit-identical default.
        assert_eq!(parse_elastic(&argv("")).unwrap(), None);
        assert_eq!(parse_elastic(&argv("--workers 4 --lr 0.1")).unwrap(), None);
        // Either flag alone enables elastic membership.
        assert_eq!(
            parse_elastic(&argv("--min-quorum 2")).unwrap(),
            Some(ElasticConfig::new(2))
        );
        assert_eq!(
            parse_elastic(&argv("--heartbeat-ms 250")).unwrap(),
            Some(ElasticConfig::new(1).with_heartbeat_timeout(Duration::from_millis(250)))
        );
        assert_eq!(
            parse_elastic(&argv("--min-quorum 3 --heartbeat-ms 1000")).unwrap(),
            Some(ElasticConfig::new(3).with_heartbeat_timeout(Duration::from_secs(1)))
        );
    }

    #[test]
    fn parse_elastic_rejects_bad_values_without_panicking() {
        for args in [
            "--min-quorum 0",
            "--min-quorum two",
            "--min-quorum -1",
            "--heartbeat-ms 0",
            "--heartbeat-ms fast",
            "--min-quorum 1 --heartbeat-ms -5",
        ] {
            let err = parse_elastic(&argv(args)).expect_err(&format!("args should fail: {args}"));
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn parse_reconnect_maps_flags() {
        use cdsgd_net::ReconnectConfig;
        use std::time::Duration;
        // No reconnect flags: the machinery is never built — the
        // bit-identical default.
        assert_eq!(parse_reconnect(&argv("")).unwrap(), None);
        assert_eq!(
            parse_reconnect(&argv("--workers 4 --min-quorum 1")).unwrap(),
            None
        );
        // Either flag alone arms reconnection, the other defaulting.
        assert_eq!(
            parse_reconnect(&argv("--reconnect-retries 3")).unwrap(),
            Some(ReconnectConfig {
                retries: 3,
                ..ReconnectConfig::default()
            })
        );
        assert_eq!(
            parse_reconnect(&argv("--reconnect-backoff-ms 20")).unwrap(),
            Some(ReconnectConfig {
                backoff: Duration::from_millis(20),
                ..ReconnectConfig::default()
            })
        );
        assert_eq!(
            parse_reconnect(&argv("--reconnect-retries 7 --reconnect-backoff-ms 100")).unwrap(),
            Some(ReconnectConfig {
                retries: 7,
                backoff: Duration::from_millis(100),
            })
        );
    }

    #[test]
    fn parse_reconnect_rejects_bad_values_without_panicking() {
        for args in [
            "--reconnect-retries 0",
            "--reconnect-retries many",
            "--reconnect-retries -2",
            "--reconnect-backoff-ms 0",
            "--reconnect-backoff-ms slow",
            "--reconnect-retries 3 --reconnect-backoff-ms -1",
        ] {
            let err = parse_reconnect(&argv(args)).expect_err(&format!("args should fail: {args}"));
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn parse_recovery_maps_flags() {
        use std::path::PathBuf;
        // No flags: recovery stays off, the bit-identical default.
        assert_eq!(parse_recovery(&argv("")).unwrap(), RecoveryFlags::default());
        assert_eq!(
            parse_recovery(&argv("--checkpoint-dir /tmp/ck")).unwrap(),
            RecoveryFlags {
                dir: Some(PathBuf::from("/tmp/ck")),
                every: None,
                resume: false,
            }
        );
        assert_eq!(
            parse_recovery(&argv(
                "--checkpoint-dir /tmp/ck --checkpoint-every 8 --resume"
            ))
            .unwrap(),
            RecoveryFlags {
                dir: Some(PathBuf::from("/tmp/ck")),
                every: Some(8),
                resume: true,
            }
        );
    }

    #[test]
    fn parse_recovery_rejects_bad_values_without_panicking() {
        for args in [
            "--checkpoint-dir /tmp/ck --checkpoint-every 0",
            "--checkpoint-dir /tmp/ck --checkpoint-every often",
            "--checkpoint-every 4",
            "--resume",
        ] {
            let err = parse_recovery(&argv(args)).expect_err(&format!("args should fail: {args}"));
            assert!(!err.is_empty());
        }
    }

    #[test]
    fn parse_server_opt_maps_flags() {
        assert_eq!(
            parse_server_opt(&argv("")).unwrap(),
            ServerOptKind::PlainSgd
        );
        assert_eq!(
            parse_server_opt(&argv("--momentum 0.9")).unwrap(),
            ServerOptKind::HeavyBall { momentum: 0.9 }
        );
        assert_eq!(
            parse_server_opt(&argv("--momentum 0.9 --nesterov")).unwrap(),
            ServerOptKind::Nesterov { momentum: 0.9 }
        );
        assert!(parse_server_opt(&argv("--nesterov")).is_err());
        assert!(parse_server_opt(&argv("--momentum 1.5")).is_err());
        assert!(parse_server_opt(&argv("--momentum big")).is_err());
    }
}
