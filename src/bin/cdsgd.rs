//! `cdsgd` — command-line front end for the CD-SGD reproduction.
//!
//! ```text
//! cdsgd train    --algo <ssgd|odsgd|bitsgd|cdsgd|localsgd|arsgd|efsgd|ecqsgd> \
//!                --dataset mnist --workers 4 --epochs 5 \
//!                [--topology ps|ring|tree|decentralized [--codec 2bit]] \
//!                [--k 2] [--threshold 0.5] [--local-lr 0.1] [--warmup N] \
//!                [--dc-lambda 0] [--sync-period 4] [--ef-momentum 0.9] \
//!                [--ecq-alpha 1] [--ecq-beta 1] \
//!                [--lr 0.1] [--momentum 0 [--nesterov]] \
//!                [--batch 32] [--samples 4000] [--seed 42] \
//!                [--max-restarts 0] [--restart-backoff-ms 250] \
//!                [--save ckpt.json] [--history hist.json] [--profile] \
//!                [--trace trace.jsonl]
//! cdsgd simulate --model resnet50 --gpu v100 --batch 32 [--k 5] [--gbps 56]
//! cdsgd codecs   [--n 1000000]
//! cdsgd orchestrate [--epochs 6] [--depart-epoch 3] [--join-delay-ms 300] \
//!                [--algo ssgd] [--samples 960] [--batch 16] [--lr 0.2] [--seed 5] \
//!                [--max-restarts 1 [--kill-round 12] [--restart-backoff-ms 250]] \
//!                [--reconnect-retries 5 [--reconnect-backoff-ms 50]]
//! ```
//!
//! `orchestrate` is the elastic-membership demo: it spawns a local
//! cluster as real OS processes — one `psd` shard in elastic mode plus
//! workers 0 and 1 — then scales *up* mid-run (worker 2 registers late
//! and rebases onto the acked versions) and *down* (worker 1 departs
//! gracefully at `--depart-epoch`). Training must complete green through
//! both membership changes; the controller then snapshots and shuts the
//! shard down. Exit status 0 is the proof.
//!
//! With `--max-restarts N` the demo adds the fault-recovery scenario
//! (DESIGN.md §14): the late joiner is spawned with a scripted silent
//! death at `--kill-round`, the shard's heartbeat timeout evicts it, and
//! the controller — governed by the same [`cd_sgd::RestartPolicy`] the
//! in-process trainer uses — re-admits a replacement via the
//! register/rebase path instead of aborting. Everyone else emits
//! heartbeats so the eviction sweep only removes the dead replica.
//!
//! `--reconnect-retries` / `--reconnect-backoff-ms` are forwarded to
//! every spawned worker, arming worker-side auto-reconnect (DESIGN.md
//! §13): a worker whose shard connection drops mid-run redials,
//! re-registers, and replays instead of exiting nonzero.

use cd_sgd::checkpoint::{save_history, Checkpoint};
use cd_sgd::{RestartPolicy, Topology, TrainConfig, Trainer};
use cd_sgd_repro::deploy::{
    arg, arg_or, flag, parse_algorithm, parse_server_opt, parse_topology, trace_telemetry,
    AlgoDefaults,
};
use cd_sgd_repro::simtime::pipeline::{AlgoKind, PipelineSim};
use cd_sgd_repro::simtime::{zoo, ClusterSpec, ModelSpec};
use cdsgd_data::{synth, toy, Dataset};
use cdsgd_nn::{models, Sequential};
use cdsgd_tensor::SmallRng64;

/// A seeded model constructor, one per dataset choice.
type ModelBuilder = Box<dyn Fn(&mut SmallRng64) -> Sequential + Send + Sync>;

fn usage() -> ! {
    eprintln!(
        "usage: cdsgd <train|simulate|codecs|orchestrate> [options]\n\
         run `cdsgd train --help-options` style flags are documented in the binary's doc comment"
    );
    std::process::exit(2)
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("train") => cmd_train(),
        Some("simulate") => cmd_simulate(),
        Some("codecs") => cmd_codecs(),
        Some("orchestrate") => cmd_orchestrate(),
        _ => usage(),
    }
}

/// Spawn a local elastic cluster (`psd` + workers as OS processes),
/// scale the worker pool up and down mid-run, and exit 0 only if every
/// process finishes green. See the binary doc comment for the scenario.
fn cmd_orchestrate() {
    match orchestrate_run() {
        Ok(summary) => println!("{summary}"),
        Err(e) => {
            eprintln!("orchestrate: {e}");
            std::process::exit(1);
        }
    }
}

/// Kills whatever is still running if orchestration fails mid-way (the
/// error path drops this before the process exits).
struct Reap(Vec<std::process::Child>);

impl Drop for Reap {
    fn drop(&mut self) {
        for c in &mut self.0 {
            let _ = c.kill();
            let _ = c.wait();
        }
    }
}

fn orchestrate_run() -> Result<String, String> {
    use cdsgd_ps::PsBackend as _;
    use std::io::{BufRead, BufReader};
    use std::process::{Child, Command, Stdio};

    const MODEL: &str = "mlp:8,32,4";
    let epochs: usize = arg_or("epochs", 6);
    let depart_epoch: usize = arg_or("depart-epoch", (epochs / 2).max(1));
    let samples: usize = arg_or("samples", 960);
    let batch: usize = arg_or("batch", 16);
    let seed: u64 = arg_or("seed", 5);
    let lr: f32 = arg_or("lr", 0.2);
    let join_delay_ms: u64 = arg_or("join-delay-ms", 100);
    let algo = arg("algo").unwrap_or_else(|| "ssgd".into());
    let max_restarts: u32 = arg_or("max-restarts", 0);
    let restart_backoff_ms: u64 = arg_or("restart-backoff-ms", 250);
    let kill_round: u64 = arg_or("kill-round", 12);
    if depart_epoch == 0 || depart_epoch >= epochs {
        eprintln!("--depart-epoch must be in 1..--epochs (got {depart_epoch} of {epochs})");
        std::process::exit(2);
    }
    // Worker-side auto-reconnect, validated here and forwarded verbatim
    // to every spawned worker (the servers this demo spawns are elastic,
    // which reconnection requires).
    let argv: Vec<String> = std::env::args().collect();
    let reconnect_args: Vec<String> =
        match cd_sgd_repro::deploy::parse_reconnect(&argv).map_err(|e| e.to_string())? {
            None => Vec::new(),
            Some(rc) => vec![
                "--reconnect-retries".into(),
                rc.retries.to_string(),
                "--reconnect-backoff-ms".into(),
                (rc.backoff.as_millis() as u64).to_string(),
            ],
        };

    let bin_dir = std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(std::path::Path::to_path_buf))
        .ok_or("cannot locate the directory holding this binary")?;
    let psd_bin = bin_dir.join("psd");
    let worker_bin = bin_dir.join("worker");
    if !psd_bin.exists() || !worker_bin.exists() {
        return Err(format!(
            "orchestrate spawns the psd and worker binaries next to cdsgd \
             ({}): build them first with `cargo build --bins`",
            bin_dir.display()
        ));
    }

    let mut reap = Reap(Vec::new());

    // One shard in elastic mode: workers 0 and 1 form the initial set,
    // min-quorum 1 lets the pool drain gracefully to zero at the end.
    // With restarts armed the shard also needs a heartbeat timeout, so
    // the scripted silent death below is *evicted* (quorum re-sized)
    // rather than stalling every in-flight round forever.
    let mut psd_cmd = Command::new(&psd_bin);
    psd_cmd
        .args(["--shard", "0", "--num-shards", "1", "--workers", "2"])
        .args(["--min-quorum", "1"])
        .args(["--lr", &lr.to_string(), "--port", "0"])
        .args(["--model", MODEL, "--seed", &seed.to_string()]);
    if max_restarts > 0 {
        psd_cmd.args(["--heartbeat-ms", "1500"]);
    }
    let mut psd = psd_cmd
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn psd: {e}"))?;
    let mut psd_out = BufReader::new(psd.stdout.take().expect("psd stdout is piped"));
    reap.0.push(psd);
    let mut line = String::new();
    psd_out
        .read_line(&mut line)
        .map_err(|e| format!("read LISTENING line: {e}"))?;
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .ok_or_else(|| format!("unexpected psd output: {line:?}"))?
        .to_string();
    println!("orchestrate: psd listening on {addr} (elastic, min-quorum 1)");

    let spawn_worker = |id: usize, extra: &[&str]| -> Result<Child, String> {
        Command::new(&worker_bin)
            .args(["--id", &id.to_string(), "--workers", "3"])
            .args(["--servers", &addr, "--algo", &algo])
            .args(["--dataset", "blobs", "--samples", &samples.to_string()])
            .args([
                "--batch",
                &batch.to_string(),
                "--epochs",
                &epochs.to_string(),
            ])
            .args(["--lr", &lr.to_string(), "--model", MODEL])
            .args(["--seed", &seed.to_string()])
            .args(&reconnect_args)
            .args(extra)
            .spawn()
            .map_err(|e| format!("spawn worker {id}: {e}"))
    };

    // When restarts are armed, every healthy replica emits heartbeats so
    // the server's eviction sweep removes only the replica that actually
    // dies (a healthy worker blocked on a stalled round goes push-silent
    // too, and pushes are its only other liveness signal).
    let hb: &[&str] = if max_restarts > 0 {
        &["--heartbeat-ms", "100"]
    } else {
        &[]
    };

    // Initial pool: worker 0 runs the whole way (and says goodbye at the
    // end); worker 1 departs gracefully mid-run — the scale-down.
    reap.0
        .push(spawn_worker(0, &[&["--register"], hb].concat())?);
    reap.0.push(spawn_worker(
        1,
        &[&["--depart-epoch", &depart_epoch.to_string()], hb].concat(),
    )?);
    println!("orchestrate: workers 0 and 1 training; 1 departs at epoch {depart_epoch}");

    // The scale-up: worker 2 was never in the server's initial set; it
    // registers mid-run and rebases its pulls onto the acked versions.
    // With restarts armed it is also the chaos victim: a scripted silent
    // death at --kill-round, for the recovery scenario below.
    std::thread::sleep(std::time::Duration::from_millis(join_delay_ms));
    let kill = kill_round.to_string();
    let victim_extra: Vec<&str> = if max_restarts > 0 {
        [&["--register", "--chaos-kill-round", &kill], hb].concat()
    } else {
        vec!["--register"]
    };
    reap.0.push(spawn_worker(2, &victim_extra)?);
    println!("orchestrate: worker 2 joining mid-run");

    for id in 0..2 {
        let status = reap.0[id + 1]
            .wait()
            .map_err(|e| format!("wait worker {id}: {e}"))?;
        if !status.success() {
            return Err(format!("worker {id} exited with {status}"));
        }
    }

    // Supervise the (possibly chaos-stricken) worker 2 under the same
    // restart policy the in-process trainer uses: a nonzero exit spends
    // one grant, waits the backoff, and re-admits a replacement through
    // the register/rebase path — until the budget is exhausted.
    let mut budget = RestartPolicy::new(
        max_restarts,
        std::time::Duration::from_millis(restart_backoff_ms),
    )
    .budget();
    let mut restarts = 0u32;
    loop {
        let status = reap
            .0
            .last_mut()
            .expect("worker 2 was spawned")
            .wait()
            .map_err(|e| format!("wait worker 2: {e}"))?;
        if status.success() {
            break;
        }
        let Some(delay) = budget.grant() else {
            return Err(format!(
                "worker 2 exited with {status} and the restart budget is exhausted"
            ));
        };
        restarts += 1;
        println!(
            "orchestrate: worker 2 lost ({status}); re-admitting a replacement in {delay:?} \
             ({} restarts left)",
            budget.remaining()
        );
        std::thread::sleep(delay);
        reap.0
            .push(spawn_worker(2, &[&["--register"], hb].concat())?);
    }
    println!("orchestrate: all workers finished and left the membership");

    // Controller epilogue: snapshot the drained (zero-active) shard,
    // then shut it down over the wire.
    let num_keys = cd_sgd_repro::deploy::initial_weights(MODEL, seed).len();
    let addrs = [addr];
    let cluster = cdsgd_ps::NetCluster::connect(&addrs, num_keys, cdsgd_net::NetConfig::default())
        .map_err(|e| format!("controller connect failed: {e}"))?;
    let (_weights, versions) = cluster
        .snapshot()
        .map_err(|e| format!("snapshot failed: {e}"))?;
    Box::new(cluster).shutdown();
    let status = reap.0[0].wait().map_err(|e| format!("wait psd: {e}"))?;
    if !status.success() {
        return Err(format!("psd exited with {status}"));
    }
    reap.0.clear();
    Ok(format!(
        "ORCHESTRATE OK: scaled 2 -> 3 -> 2 -> 0 workers, {restarts} replacement(s); \
         server finished at round {}",
        versions.iter().copied().min().unwrap_or(0)
    ))
}

fn cmd_train() {
    let workers: usize = arg_or("workers", 2);
    let epochs: usize = arg_or("epochs", 5);
    let batch: usize = arg_or("batch", 32);
    let samples: usize = arg_or("samples", 4_000);
    let seed: u64 = arg_or("seed", 42);
    let lr: f32 = arg_or("lr", 0.1);

    let dataset_name = arg("dataset").unwrap_or_else(|| "mnist".into());
    let (data, builder): (Dataset, ModelBuilder) = match dataset_name.as_str() {
        "mnist" => (
            synth::mnist_like(samples, seed),
            Box::new(|rng: &mut SmallRng64| models::lenet5(10, rng)),
        ),
        "cifar" => (
            synth::cifar_like(samples, seed),
            Box::new(|rng: &mut SmallRng64| models::resnet_cifar(8, 1, 10, rng)),
        ),
        "blobs" => (
            toy::gaussian_blobs(samples, 8, 4, 0.6, seed),
            Box::new(|rng: &mut SmallRng64| models::mlp(&[8, 32, 4], rng)),
        ),
        other => {
            eprintln!("unknown dataset {other} (mnist|cifar|blobs)");
            std::process::exit(2)
        }
    };
    let (train, test) = data.split(0.85);
    // Default warm-up: one epoch of iterations (the paper warms up for
    // "the first several epochs"); override with --warmup.
    let warmup = (train.len() / workers / batch).max(1);

    let argv: Vec<String> = std::env::args().collect();
    let defaults = AlgoDefaults {
        local_lr: 0.1,
        threshold: 0.5,
        k: 2,
        warmup,
    };
    let algo = parse_algorithm(&argv, &defaults).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    let server_opt = parse_server_opt(&argv).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    let topology = parse_topology(&argv, &defaults).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    if topology != Topology::Ps && !algo.uses_ring() {
        eprintln!(
            "--topology {} is server-less and requires --algo arsgd (got {})",
            topology.name(),
            algo.name()
        );
        std::process::exit(2);
    }

    let mut cfg = TrainConfig::new(algo, workers)
        .with_lr(lr)
        .with_batch_size(batch)
        .with_epochs(epochs)
        .with_seed(seed)
        .with_server_opt(server_opt)
        .with_topology(topology);
    if flag("profile") {
        cfg = cfg.with_profiling(true);
    }
    // `--max-restarts N` arms hot worker replacement (DESIGN.md §14):
    // a lost worker is respawned in place, resuming at the first epoch
    // it never finished, instead of aborting the run.
    let max_restarts: u32 = arg_or("max-restarts", 0);
    if max_restarts > 0 {
        let backoff_ms: u64 = arg_or("restart-backoff-ms", 250);
        cfg = cfg.with_restart_policy(RestartPolicy::new(
            max_restarts,
            std::time::Duration::from_millis(backoff_ms),
        ));
    }
    // `--trace <path>` streams the whole telemetry event model — op
    // spans (with --profile), epoch rollups, server round lifecycle —
    // as JSONL. Disabled (zero-cost) without the flag.
    cfg = cfg.with_telemetry(trace_telemetry());
    if let Some(mibps) = arg("net-mibps") {
        let m: f64 = mibps.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --net-mibps: {mibps} (MiB/s as a number)");
            std::process::exit(2)
        });
        cfg = cfg.with_emulated_network(m * 1024.0 * 1024.0);
    }

    println!(
        "training {} on {dataset_name} ({} train / {} test samples, M={workers})",
        cfg.algo.name(),
        train.len(),
        test.len()
    );
    let history = Trainer::new(cfg, move |rng| builder(rng), train, Some(test)).run();
    print!("{}", history.to_tsv());
    println!(
        "final test acc: {}",
        history
            .final_test_acc()
            .map_or("-".into(), |a| format!("{a:.4}"))
    );

    if let Some(path) = arg("save") {
        Checkpoint::new(history.algo.clone(), history.final_weights.clone())
            .save(&path)
            .expect("write checkpoint");
        println!("checkpoint written to {path}");
    }
    if let Some(path) = arg("history") {
        save_history(&history, &path).expect("write history");
        println!("history written to {path}");
    }
}

fn cmd_simulate() {
    let model: ModelSpec = match arg("model").unwrap_or_else(|| "resnet50".into()).as_str() {
        "lenet5" => zoo::lenet5(),
        "resnet20" => zoo::resnet20(),
        "alexnet" => zoo::alexnet(),
        "vgg16" => zoo::vgg16(),
        "inception" => zoo::inception_bn(),
        "resnet50" => zoo::resnet50(),
        other => {
            eprintln!("unknown model {other}");
            std::process::exit(2)
        }
    };
    let cluster = match arg("gpu").unwrap_or_else(|| "v100".into()).as_str() {
        "k80" => ClusterSpec::k80_cluster(),
        "v100" => ClusterSpec::v100_cluster(),
        other => {
            eprintln!("unknown gpu {other} (k80|v100)");
            std::process::exit(2)
        }
    }
    .with_bandwidth_gbps(arg_or("gbps", 56.0));
    let batch: usize = arg_or("batch", 32);
    let k: usize = arg_or("k", 5);

    println!(
        "simulating {} on {} x{} nodes ({} GPUs/node), batch {batch}",
        model.name,
        cluster.gpu.name(),
        cluster.nodes,
        cluster.gpus_per_node
    );
    let sim = PipelineSim::new(&model, &cluster, batch);
    let ssgd = sim.run(AlgoKind::Ssgd, 42).avg_iter_time;
    println!("{:<14} {:>12} {:>12}", "algorithm", "ms/iter", "vs S-SGD");
    for (algo, iters) in [
        (AlgoKind::Ssgd, 42),
        (AlgoKind::OdSgd, 42),
        (AlgoKind::BitSgd, 42),
        (AlgoKind::CdSgd { k }, 2 + 10 * k),
    ] {
        let t = sim.run(algo, iters).avg_iter_time;
        println!(
            "{:<14} {:>12.2} {:>11.0}%",
            algo.name(),
            t * 1e3,
            (ssgd / t - 1.0) * 100.0
        );
    }
}

fn cmd_codecs() {
    use cdsgd_compress::{
        decompress, AdaptiveTwoBit, GradientCompressor, OneBitQuantizer, QsgdQuantizer,
        TernGradQuantizer, TopKSparsifier, TwoBitQuantizer,
    };
    let n: usize = arg_or("n", 1_000_000);
    let mut rng = SmallRng64::new(7);
    let grad: Vec<f32> = (0..n).map(|_| 0.3 * rng.gauss()).collect();
    let mut codecs: Vec<Box<dyn GradientCompressor>> = vec![
        Box::new(TwoBitQuantizer::new(0.5)),
        Box::new(AdaptiveTwoBit::new(1.0)),
        Box::new(OneBitQuantizer::new()),
        Box::new(TernGradQuantizer::new(7)),
        Box::new(QsgdQuantizer::new(4, 7)),
        Box::new(TopKSparsifier::new(0.01)),
    ];
    println!(
        "{:<14} {:>12} {:>10} {:>12}",
        "codec", "wire_KiB", "ratio", "encode_ms"
    );
    for c in codecs.iter_mut() {
        let t0 = std::time::Instant::now();
        let payload = c.compress(0, &grad);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        let mut out = vec![0.0f32; n];
        decompress(&payload, &mut out);
        println!(
            "{:<14} {:>12} {:>10.4} {:>12.2}",
            c.name(),
            payload.wire_bytes() / 1024,
            c.compression_ratio(n),
            dt
        );
    }
}
