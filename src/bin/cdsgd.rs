//! `cdsgd` — command-line front end for the CD-SGD reproduction.
//!
//! ```text
//! cdsgd train    --algo <ssgd|odsgd|bitsgd|cdsgd|localsgd|arsgd|efsgd> \
//!                --dataset mnist --workers 4 --epochs 5 \
//!                [--k 2] [--threshold 0.5] [--local-lr 0.1] [--warmup N] \
//!                [--dc-lambda 0] [--sync-period 4] [--ef-momentum 0.9] \
//!                [--lr 0.1] [--momentum 0 [--nesterov]] \
//!                [--batch 32] [--samples 4000] [--seed 42] \
//!                [--save ckpt.json] [--history hist.json] [--profile] \
//!                [--trace trace.jsonl]
//! cdsgd simulate --model resnet50 --gpu v100 --batch 32 [--k 5] [--gbps 56]
//! cdsgd codecs   [--n 1000000]
//! ```

use cd_sgd::checkpoint::{save_history, Checkpoint};
use cd_sgd::{TrainConfig, Trainer};
use cd_sgd_repro::deploy::{
    arg, arg_or, flag, parse_algorithm, parse_server_opt, trace_telemetry, AlgoDefaults,
};
use cd_sgd_repro::simtime::pipeline::{AlgoKind, PipelineSim};
use cd_sgd_repro::simtime::{zoo, ClusterSpec, ModelSpec};
use cdsgd_data::{synth, toy, Dataset};
use cdsgd_nn::{models, Sequential};
use cdsgd_tensor::SmallRng64;

/// A seeded model constructor, one per dataset choice.
type ModelBuilder = Box<dyn Fn(&mut SmallRng64) -> Sequential + Send + Sync>;

fn usage() -> ! {
    eprintln!(
        "usage: cdsgd <train|simulate|codecs> [options]\n\
         run `cdsgd train --help-options` style flags are documented in the binary's doc comment"
    );
    std::process::exit(2)
}

fn main() {
    match std::env::args().nth(1).as_deref() {
        Some("train") => cmd_train(),
        Some("simulate") => cmd_simulate(),
        Some("codecs") => cmd_codecs(),
        _ => usage(),
    }
}

fn cmd_train() {
    let workers: usize = arg_or("workers", 2);
    let epochs: usize = arg_or("epochs", 5);
    let batch: usize = arg_or("batch", 32);
    let samples: usize = arg_or("samples", 4_000);
    let seed: u64 = arg_or("seed", 42);
    let lr: f32 = arg_or("lr", 0.1);

    let dataset_name = arg("dataset").unwrap_or_else(|| "mnist".into());
    let (data, builder): (Dataset, ModelBuilder) = match dataset_name.as_str() {
        "mnist" => (
            synth::mnist_like(samples, seed),
            Box::new(|rng: &mut SmallRng64| models::lenet5(10, rng)),
        ),
        "cifar" => (
            synth::cifar_like(samples, seed),
            Box::new(|rng: &mut SmallRng64| models::resnet_cifar(8, 1, 10, rng)),
        ),
        "blobs" => (
            toy::gaussian_blobs(samples, 8, 4, 0.6, seed),
            Box::new(|rng: &mut SmallRng64| models::mlp(&[8, 32, 4], rng)),
        ),
        other => {
            eprintln!("unknown dataset {other} (mnist|cifar|blobs)");
            std::process::exit(2)
        }
    };
    let (train, test) = data.split(0.85);
    // Default warm-up: one epoch of iterations (the paper warms up for
    // "the first several epochs"); override with --warmup.
    let warmup = (train.len() / workers / batch).max(1);

    let argv: Vec<String> = std::env::args().collect();
    let defaults = AlgoDefaults {
        local_lr: 0.1,
        threshold: 0.5,
        k: 2,
        warmup,
    };
    let algo = parse_algorithm(&argv, &defaults).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });
    let server_opt = parse_server_opt(&argv).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2)
    });

    let mut cfg = TrainConfig::new(algo, workers)
        .with_lr(lr)
        .with_batch_size(batch)
        .with_epochs(epochs)
        .with_seed(seed)
        .with_server_opt(server_opt);
    if flag("profile") {
        cfg = cfg.with_profiling(true);
    }
    // `--trace <path>` streams the whole telemetry event model — op
    // spans (with --profile), epoch rollups, server round lifecycle —
    // as JSONL. Disabled (zero-cost) without the flag.
    cfg = cfg.with_telemetry(trace_telemetry());
    if let Some(mibps) = arg("net-mibps") {
        let m: f64 = mibps.parse().unwrap_or_else(|_| {
            eprintln!("invalid value for --net-mibps: {mibps} (MiB/s as a number)");
            std::process::exit(2)
        });
        cfg = cfg.with_emulated_network(m * 1024.0 * 1024.0);
    }

    println!(
        "training {} on {dataset_name} ({} train / {} test samples, M={workers})",
        cfg.algo.name(),
        train.len(),
        test.len()
    );
    let history = Trainer::new(cfg, move |rng| builder(rng), train, Some(test)).run();
    print!("{}", history.to_tsv());
    println!(
        "final test acc: {}",
        history
            .final_test_acc()
            .map_or("-".into(), |a| format!("{a:.4}"))
    );

    if let Some(path) = arg("save") {
        Checkpoint::new(history.algo.clone(), history.final_weights.clone())
            .save(&path)
            .expect("write checkpoint");
        println!("checkpoint written to {path}");
    }
    if let Some(path) = arg("history") {
        save_history(&history, &path).expect("write history");
        println!("history written to {path}");
    }
}

fn cmd_simulate() {
    let model: ModelSpec = match arg("model").unwrap_or_else(|| "resnet50".into()).as_str() {
        "lenet5" => zoo::lenet5(),
        "resnet20" => zoo::resnet20(),
        "alexnet" => zoo::alexnet(),
        "vgg16" => zoo::vgg16(),
        "inception" => zoo::inception_bn(),
        "resnet50" => zoo::resnet50(),
        other => {
            eprintln!("unknown model {other}");
            std::process::exit(2)
        }
    };
    let cluster = match arg("gpu").unwrap_or_else(|| "v100".into()).as_str() {
        "k80" => ClusterSpec::k80_cluster(),
        "v100" => ClusterSpec::v100_cluster(),
        other => {
            eprintln!("unknown gpu {other} (k80|v100)");
            std::process::exit(2)
        }
    }
    .with_bandwidth_gbps(arg_or("gbps", 56.0));
    let batch: usize = arg_or("batch", 32);
    let k: usize = arg_or("k", 5);

    println!(
        "simulating {} on {} x{} nodes ({} GPUs/node), batch {batch}",
        model.name,
        cluster.gpu.name(),
        cluster.nodes,
        cluster.gpus_per_node
    );
    let sim = PipelineSim::new(&model, &cluster, batch);
    let ssgd = sim.run(AlgoKind::Ssgd, 42).avg_iter_time;
    println!("{:<14} {:>12} {:>12}", "algorithm", "ms/iter", "vs S-SGD");
    for (algo, iters) in [
        (AlgoKind::Ssgd, 42),
        (AlgoKind::OdSgd, 42),
        (AlgoKind::BitSgd, 42),
        (AlgoKind::CdSgd { k }, 2 + 10 * k),
    ] {
        let t = sim.run(algo, iters).avg_iter_time;
        println!(
            "{:<14} {:>12.2} {:>11.0}%",
            algo.name(),
            t * 1e3,
            (ssgd / t - 1.0) * 100.0
        );
    }
}

fn cmd_codecs() {
    use cdsgd_compress::{
        decompress, AdaptiveTwoBit, GradientCompressor, OneBitQuantizer, QsgdQuantizer,
        TernGradQuantizer, TopKSparsifier, TwoBitQuantizer,
    };
    let n: usize = arg_or("n", 1_000_000);
    let mut rng = SmallRng64::new(7);
    let grad: Vec<f32> = (0..n).map(|_| 0.3 * rng.gauss()).collect();
    let mut codecs: Vec<Box<dyn GradientCompressor>> = vec![
        Box::new(TwoBitQuantizer::new(0.5)),
        Box::new(AdaptiveTwoBit::new(1.0)),
        Box::new(OneBitQuantizer::new()),
        Box::new(TernGradQuantizer::new(7)),
        Box::new(QsgdQuantizer::new(4, 7)),
        Box::new(TopKSparsifier::new(0.01)),
    ];
    println!(
        "{:<14} {:>12} {:>10} {:>12}",
        "codec", "wire_KiB", "ratio", "encode_ms"
    );
    for c in codecs.iter_mut() {
        let t0 = std::time::Instant::now();
        let payload = c.compress(0, &grad);
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        let mut out = vec![0.0f32; n];
        decompress(&payload, &mut out);
        println!(
            "{:<14} {:>12} {:>10.4} {:>12.2}",
            c.name(),
            payload.wire_bytes() / 1024,
            c.compression_ratio(n),
            dt
        );
    }
}
