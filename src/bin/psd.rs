//! `psd` — one parameter-server shard as a standalone OS process.
//!
//! Serves its shard of the global model over localhost TCP. Shard `s` of
//! `S` owns global keys `{k : k mod S == s}`; every process derives the
//! same initial weights from `--model`/`--seed`, so the shard can slice
//! its own partition without any coordination.
//!
//! ```text
//! psd --shard 0 --num-shards 2 --workers 2 --lr 0.2 \
//!     [--momentum 0.9 [--nesterov]] \
//!     [--min-quorum 1] [--heartbeat-ms 500] \
//!     [--checkpoint-dir ck [--checkpoint-every 16] [--resume]] \
//!     --model mlp:8,32,4 --seed 5 --port 0 \
//!     [--trace trace.jsonl] [--stats]
//! ```
//!
//! Prints `LISTENING <addr>` on stdout once the socket is bound (with
//! `--port 0` the kernel picks the port, so callers must parse this
//! line), then serves until a client sends a shutdown frame. With
//! `--stats` a second stdout contract line
//! `STATS sent <n> received <n> pushed <n> pulled <n>` follows a clean
//! shutdown, reporting the shard's cumulative wire traffic (encoded
//! frame bytes on both directions, plus the push/pull payload
//! accounting the paper's eq. 4–9 compare). `--trace <path>` streams
//! every telemetry event — per-frame wire bytes tagged by connection,
//! round lifecycle, supervision verdicts — to a JSONL file.
//!
//! With `--round-deadline-ms N` the shard refuses to wait forever on a
//! worker that stopped pushing: once an aggregation round stays partial
//! for N milliseconds the shard names the missing worker, fails the
//! round, and the process exits nonzero instead of hanging. Pick N well
//! above the slowest expected iteration — delayed algorithms (OD-SGD,
//! CD-SGD) legitimately leave rounds partial while a round is in flight.
//!
//! `--min-quorum <n>` / `--heartbeat-ms <ms>` switch the shard into
//! *elastic membership*: workers may register, leave, and be evicted
//! after a silent heartbeat interval, with each round's quorum re-sized
//! to the current active set (`--workers` is then only the initial set).
//! Without either flag membership is fixed and runs stay bit-identical
//! to earlier releases.
//!
//! `--checkpoint-dir <dir>` arms the fault-recovery subsystem
//! (DESIGN.md §14): with `--checkpoint-every <rounds>` the shard writes
//! an atomic durable snapshot of its weights and optimizer state each
//! time every key crosses a round boundary that is a multiple of the
//! interval; without it, snapshots happen only on demand (the
//! `Checkpoint` wire message). `--resume` restarts the shard from the
//! latest *complete* checkpoint set in the directory — a round missing
//! any shard's file is ignored, so resume never mixes versions — or
//! from the initial weights when none exists. Resume notes go to
//! stderr; `LISTENING` stays the first stdout line.

use std::sync::Arc;
use std::time::Duration;

use cd_sgd::{Console, Telemetry};
use cd_sgd_repro::deploy::{
    arg, arg_or, flag, initial_weights, parse_elastic, parse_reconnect, parse_recovery,
    parse_server_opt, trace_telemetry,
};
use cdsgd_net::{NetConfig, TcpAcceptor};
use cdsgd_ps::recover::{load_latest, CheckpointPolicy, Durability};
use cdsgd_ps::{partition_keys, PsNetServer, ServerConfig};

fn main() {
    let console = Console::new();
    let shard: usize = arg_or("shard", 0);
    let num_shards: usize = arg_or("num-shards", 1);
    let workers: usize = arg_or("workers", 1);
    let lr: f32 = arg_or("lr", 0.1);
    let port: u16 = arg_or("port", 0);
    let seed: u64 = arg_or("seed", 42);
    let round_deadline_ms: u64 = arg_or("round-deadline-ms", 0);
    let model = arg("model").unwrap_or_else(|| "mlp:8,32,4".to_string());
    let stats_line = flag("stats");
    if shard >= num_shards {
        console.error(format_args!(
            "--shard {shard} out of range for --num-shards {num_shards}"
        ));
        std::process::exit(2);
    }

    let init = initial_weights(&model, seed);
    let shard_init = partition_keys(init, num_shards).swap_remove(shard);
    console.status(format_args!(
        "psd shard {shard}/{num_shards}: {} of the model's keys, {workers} workers, lr {lr}",
        shard_init.len()
    ));

    let argv: Vec<String> = std::env::args().collect();
    let opt = parse_server_opt(&argv).unwrap_or_else(|e| {
        console.error(e);
        std::process::exit(2)
    });
    let mut cfg = ServerConfig::new(workers, lr).with_optimizer(opt);
    if round_deadline_ms > 0 {
        cfg = cfg.with_round_deadline(Duration::from_millis(round_deadline_ms));
    }
    match parse_elastic(&argv) {
        Ok(Some(elastic)) => cfg = cfg.with_elastic(elastic),
        Ok(None) => {}
        Err(e) => {
            console.error(e);
            std::process::exit(2)
        }
    }
    // Launchers often share one flag template across every process of a
    // run, so the worker-side `--reconnect-*` flags are accepted and
    // validated here too — but a server shard has nothing to redial;
    // they only change behaviour in `worker`.
    if let Err(e) = parse_reconnect(&argv) {
        console.error(e);
        std::process::exit(2)
    }

    // Fault recovery (DESIGN.md §14): optionally restore from the
    // latest complete checkpoint set and/or arm scheduled snapshots.
    let recovery = parse_recovery(&argv).unwrap_or_else(|e| {
        console.error(e);
        std::process::exit(2)
    });
    let mut durability = Durability::default();
    if let Some(dir) = &recovery.dir {
        if recovery.resume {
            match load_latest(dir, shard, num_shards) {
                Ok(Some(ckpt)) => {
                    console.status(format_args!(
                        "psd shard {shard}: resuming from checkpoint at round {}",
                        ckpt.round
                    ));
                    durability.restore = Some(ckpt.into_restored());
                }
                Ok(None) => console.status(format_args!(
                    "psd shard {shard}: no complete checkpoint set in {}; starting fresh",
                    dir.display()
                )),
                Err(e) => {
                    console.error(format_args!(
                        "psd shard {shard}: cannot resume from {}: {e}",
                        dir.display()
                    ));
                    std::process::exit(1);
                }
            }
        }
        durability.checkpoint = Some(CheckpointPolicy::new(
            dir.clone(),
            recovery.every,
            shard,
            num_shards,
        ));
    }

    // Supervision verdicts (expired rounds) render on stderr through
    // the console sink; `--trace` adds the full JSONL event stream.
    // The trace handle stays separate so it can be flushed before the
    // final contract line.
    let trace = trace_telemetry();
    let telemetry = Telemetry::new(Arc::new(Console::new())).and(&trace);
    let server = PsNetServer::start_durable(shard_init, cfg, telemetry, durability);
    let (acceptor, addr) =
        TcpAcceptor::bind(("127.0.0.1", port), NetConfig::default()).expect("bind TCP listener");

    // The contract with launchers: exactly one LISTENING line, flushed
    // before any client could need it.
    console.contract(format_args!("LISTENING {addr}"));

    server.listen(acceptor);
    if let Err(e) = server.wait_for_shutdown() {
        console.error(format_args!("psd shard {shard}: round failed: {e}"));
        server.shutdown();
        trace.flush();
        std::process::exit(1);
    }
    // Shutdown joins every connection's reader/writer thread, so the
    // counters read below are final — no in-flight frame can bump them
    // after the STATS line prints.
    server.shutdown();
    trace.flush();
    let stats = server.stats();
    let (sent, received) = (stats.bytes_sent(), stats.bytes_received());
    let (pushed, pulled) = (stats.bytes_pushed(), stats.bytes_pulled());
    if stats_line {
        console.contract(format_args!(
            "STATS sent {sent} received {received} pushed {pushed} pulled {pulled}"
        ));
    }
    console.status(format_args!(
        "psd shard {shard}: shutdown after {pushed} pushed bytes"
    ));
}
