//! `worker` — one CD-SGD training worker as a standalone OS process.
//!
//! Connects to a sharded parameter-server group served by `psd`
//! processes and runs the full training loop for one worker replica.
//! Every replica must be launched with identical `--model`, `--seed`,
//! dataset and algorithm flags — the run is then bit-identical to the
//! in-process `Trainer` with the same configuration.
//!
//! ```text
//! worker --id 0 --workers 2 --servers 127.0.0.1:4100,127.0.0.1:4101 \
//!        --algo cdsgd --dataset blobs --samples 480 --batch 16 \
//!        --epochs 2 --lr 0.2 --local-lr 0.05 --threshold 0.05 \
//!        --k 2 --warmup 3 --model mlp:8,32,4 --seed 5
//! ```
//!
//! Workers never shut the servers down: a controller (or `--shutdown`
//! on exactly one worker) sends the shutdown frames once all replicas
//! have finished.
//!
//! A dead server, broken connection, or failed round exits nonzero with
//! the typed error on stderr. `--chaos-kill-round N` makes *this*
//! replica die silently at aggregate round N (its connections stay open
//! but it stops pushing) — fault injection for exercising the servers'
//! `--round-deadline-ms` supervision.

use cd_sgd::{run_standalone_worker, Algorithm, TrainConfig, WorkerFault};
use cd_sgd_repro::deploy::{arg, arg_or, build_dataset, build_model, initial_weights};
use cdsgd_net::NetConfig;
use cdsgd_ps::{FaultyClient, NetCluster, ParamClient, PsBackend};

fn main() {
    let id: usize = arg_or("id", 0);
    let workers: usize = arg_or("workers", 1);
    let servers: Vec<String> = arg("servers")
        .unwrap_or_else(|| {
            eprintln!("missing --servers addr[,addr...]");
            std::process::exit(2)
        })
        .split(',')
        .map(str::to_string)
        .collect();

    let dataset = arg("dataset").unwrap_or_else(|| "blobs".to_string());
    let samples: usize = arg_or("samples", 480);
    let batch: usize = arg_or("batch", 16);
    let epochs: usize = arg_or("epochs", 2);
    let seed: u64 = arg_or("seed", 42);
    let lr: f32 = arg_or("lr", 0.1);
    let local_lr: f32 = arg_or("local-lr", 0.05);
    let threshold: f32 = arg_or("threshold", 0.05);
    let k: usize = arg_or("k", 2);
    let warmup: usize = arg_or("warmup", 3);
    let model = arg("model").unwrap_or_else(|| "mlp:8,32,4".to_string());
    let shutdown = std::env::args().any(|a| a == "--shutdown");
    let chaos_kill_round: Option<u64> = arg("chaos-kill-round").map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("--chaos-kill-round must be a round number, got {v:?}");
            std::process::exit(2)
        })
    });

    let algo_name = arg("algo").unwrap_or_else(|| "cdsgd".into());
    let algo = match algo_name.as_str() {
        "ssgd" => Algorithm::SSgd,
        "odsgd" => Algorithm::OdSgd { local_lr },
        "bitsgd" => Algorithm::BitSgd { threshold },
        "cdsgd" => Algorithm::cd_sgd(local_lr, threshold, k, warmup),
        other => {
            eprintln!("unknown algorithm {other} (ssgd|odsgd|bitsgd|cdsgd)");
            std::process::exit(2)
        }
    };

    let (train, test) = build_dataset(&dataset, samples, seed);
    let num_keys = initial_weights(&model, seed).len();
    let cfg = TrainConfig::new(algo, workers)
        .with_lr(lr)
        .with_batch_size(batch)
        .with_epochs(epochs)
        .with_seed(seed);

    eprintln!(
        "worker {id}/{workers}: {} train samples, {num_keys} keys over {} shards",
        train.len(),
        servers.len()
    );
    let cluster =
        NetCluster::connect(&servers, num_keys, NetConfig::default()).expect("connect to servers");
    let client = cluster.client().expect("open shard connections");
    let client: Box<dyn ParamClient> = match chaos_kill_round {
        Some(round) => {
            eprintln!("worker {id}: chaos — will die silently at round {round}");
            Box::new(FaultyClient::new(
                client,
                WorkerFault::KillAtRound { round },
                num_keys,
            ))
        }
        None => client,
    };

    let spec = model.clone();
    let report = match run_standalone_worker(
        cfg,
        id,
        move |rng| build_model(&spec, rng),
        &train,
        Some(test),
        client,
    ) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("worker {id}: training failed: {e}");
            std::process::exit(1);
        }
    };

    for (epoch, (loss, acc)) in report.iter().enumerate() {
        match acc {
            Some(a) => println!("epoch {epoch} loss {loss:.6} test_acc {a:.4}"),
            None => println!("epoch {epoch} loss {loss:.6}"),
        }
    }

    if shutdown {
        Box::new(cluster).shutdown();
        eprintln!("worker {id}: sent shutdown to {} shards", servers.len());
    }
    println!("DONE worker {id}");
}
