//! `worker` — one CD-SGD training worker as a standalone OS process.
//!
//! Connects to a sharded parameter-server group served by `psd`
//! processes and runs the full training loop for one worker replica.
//! Every replica must be launched with identical `--model`, `--seed`,
//! dataset and algorithm flags — the run is then bit-identical to the
//! in-process `Trainer` with the same configuration.
//!
//! ```text
//! worker --id 0 --workers 2 --servers 127.0.0.1:4100,127.0.0.1:4101 \
//!        --algo cdsgd --dataset blobs --samples 480 --batch 16 \
//!        --epochs 2 --lr 0.2 --local-lr 0.05 --threshold 0.05 \
//!        --k 2 --warmup 3 --model mlp:8,32,4 --seed 5 \
//!        [--trace trace.jsonl]
//! ```
//!
//! Server-less deployment: `--topology ring|tree|decentralized` (with
//! `--algo arsgd`) skips the parameter server entirely. Every replica
//! lists the same `--peers addr0,addr1,...` (its own slot is
//! `--id`), the processes wire themselves into a TCP ring or binary
//! tree, and each round synchronizes by chunked allreduce — or, for
//! `decentralized`, by codec-compressed neighbor gossip
//! (`--codec 2bit|1bit|topk|qsgd`). `--servers` and the PS-only flags
//! (register/heartbeat/reconnect/chaos/depart) are rejected in this
//! mode.
//!
//! ```text
//! worker --id 0 --workers 4 --topology ring \
//!        --peers 127.0.0.1:4200,127.0.0.1:4201,127.0.0.1:4202,127.0.0.1:4203 \
//!        --algo arsgd --dataset blobs --model mlp:8,32,4 --seed 5
//! ```
//!
//! Output contract: **stdout** carries only the machine-parseable
//! `DONE worker <id>` line that process harnesses wait on; everything
//! human-facing (epoch progress, lifecycle status, errors) goes to
//! **stderr** through the telemetry [`Console`] sink. `--trace <path>`
//! additionally streams every telemetry event — op spans, per-frame
//! wire bytes, epoch rollups — to a JSONL file.
//!
//! Workers never shut the servers down: a controller (or `--shutdown`
//! on exactly one worker) sends the shutdown frames once all replicas
//! have finished.
//!
//! A dead server, broken connection, or failed round exits nonzero with
//! the typed error on stderr. `--chaos-kill-round N` makes *this*
//! replica die silently at aggregate round N (its connections stay open
//! but it stops pushing) — fault injection for exercising the servers'
//! `--round-deadline-ms` supervision.
//!
//! Against an elastic server (`psd --min-quorum`/`--heartbeat-ms`):
//! `--register` announces this replica to every shard before training
//! (required when it was not in the server's initial `--workers` set,
//! e.g. a mid-run scale-up) and sends a graceful `Leave` once training
//! finishes, so stragglers keep completing rounds without it.
//! `--depart-epoch N` instead leaves mid-run, at the start of epoch N
//! (a scale-down; requires `--id` ≥ 1). `--heartbeat-ms N` emits a
//! liveness heartbeat to every shard each N milliseconds from a
//! background thread, so a server-side heartbeat timeout evicts only
//! replicas that actually died — pick an interval well below the
//! server's `--heartbeat-ms` eviction window.
//!
//! `--reconnect-retries N` / `--reconnect-backoff-ms M` (DESIGN.md §13)
//! arm worker-side auto-reconnect: when a shard connection drops
//! mid-run, the worker redials every shard with bounded exponential
//! backoff, re-registers, replays the pushes the completed rounds did
//! not consume (exactly once), and re-issues its outstanding pulls —
//! the run then finishes as if the drop never happened. Requires
//! elastic servers (`psd --min-quorum`); with neither flag the
//! reconnect machinery is never built and the run takes the exact
//! legacy code paths. `--chaos-drop-sends N` injects the matching
//! fault: every shard connection of this replica's training client dies
//! after N sent frames.
//!
//! Fault recovery (DESIGN.md §14): `--checkpoint-dir <dir>` writes this
//! replica's private state (local model and the algorithm's residual or
//! accumulation buffers) after each epoch — every
//! `--checkpoint-every <epochs>` epochs — and `--start-epoch N` resumes
//! from epoch N, restoring that state when a matching checkpoint exists
//! and re-basing on the server's globals otherwise.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cd_sgd::{
    run_standalone_collective, run_standalone_worker, Console, Telemetry, Topology, TrainConfig,
    WorkerFault,
};
use cd_sgd_repro::deploy::{
    arg, arg_or, build_dataset, build_model, flag, initial_weights, parse_algorithm,
    parse_reconnect, parse_topology, trace_telemetry, AlgoDefaults,
};
use cdsgd_net::{FaultPlan, NetConfig};
use cdsgd_ps::{
    Collective, FaultyClient, NetCluster, ParamClient, PsBackend, RebasedClient, TrafficStats,
    WireRing, WireTree,
};

fn main() {
    let console = Console::new();
    let id: usize = arg_or("id", 0);
    let workers: usize = arg_or("workers", 1);
    let servers: Vec<String> = arg("servers")
        .map(|s| s.split(',').map(str::to_string).collect())
        .unwrap_or_default();

    let dataset = arg("dataset").unwrap_or_else(|| "blobs".to_string());
    let samples: usize = arg_or("samples", 480);
    let batch: usize = arg_or("batch", 16);
    let epochs: usize = arg_or("epochs", 2);
    let seed: u64 = arg_or("seed", 42);
    let lr: f32 = arg_or("lr", 0.1);
    let model = arg("model").unwrap_or_else(|| "mlp:8,32,4".to_string());
    let shutdown = flag("shutdown");
    let register = flag("register");
    let heartbeat_ms: u64 = arg_or("heartbeat-ms", 0);
    let start_epoch: usize = arg_or("start-epoch", 0);
    let ckpt_dir = arg("checkpoint-dir");
    let ckpt_every: usize = arg_or("checkpoint-every", 1);
    if start_epoch >= epochs {
        console.error(format_args!(
            "--start-epoch {start_epoch} must be below --epochs {epochs}"
        ));
        std::process::exit(2);
    }
    if ckpt_every == 0 {
        console.error("--checkpoint-every must be at least 1 epoch");
        std::process::exit(2);
    }
    let depart_epoch: Option<usize> = arg("depart-epoch").map(|v| {
        v.parse().unwrap_or_else(|_| {
            console.error(format_args!(
                "--depart-epoch must be an epoch number, got {v:?}"
            ));
            std::process::exit(2)
        })
    });
    let chaos_kill_round: Option<u64> = arg("chaos-kill-round").map(|v| {
        v.parse().unwrap_or_else(|_| {
            console.error(format_args!(
                "--chaos-kill-round must be a round number, got {v:?}"
            ));
            std::process::exit(2)
        })
    });
    let chaos_drop_sends: Option<u64> = arg("chaos-drop-sends").map(|v| {
        v.parse().unwrap_or_else(|_| {
            console.error(format_args!(
                "--chaos-drop-sends must be a frame count, got {v:?}"
            ));
            std::process::exit(2)
        })
    });

    let argv: Vec<String> = std::env::args().collect();
    let defaults = AlgoDefaults {
        local_lr: 0.05,
        threshold: 0.05,
        k: 2,
        warmup: 3,
    };
    let algo = parse_algorithm(&argv, &defaults).unwrap_or_else(|e| {
        console.error(e);
        std::process::exit(2)
    });
    let topology = parse_topology(&argv, &defaults).unwrap_or_else(|e| {
        console.error(e);
        std::process::exit(2)
    });
    let collective_mode = topology != Topology::Ps;
    if collective_mode && !algo.uses_ring() {
        console.error(format_args!(
            "--topology {} is server-less and requires --algo arsgd (got {})",
            topology.name(),
            algo.name()
        ));
        std::process::exit(2);
    }
    if algo.uses_ring() && !collective_mode {
        console.error(
            "arsgd needs a worker collective; pass --topology ring|tree|decentralized \
             with --peers addr0,addr1,... (or use `cdsgd train --algo arsgd`)",
        );
        std::process::exit(2);
    }
    let reconnect = parse_reconnect(&argv).unwrap_or_else(|e| {
        console.error(e);
        std::process::exit(2)
    });

    // Status and epoch rollups render on stderr through the console
    // sink; `--trace` adds the JSONL event stream alongside it. The
    // trace handle is kept separate so it can be flushed before the
    // DONE contract line — a harness that sees DONE may read the file
    // immediately.
    let trace = trace_telemetry();
    let telemetry = Telemetry::new(Arc::new(Console::new())).and(&trace);

    let (train, test) = build_dataset(&dataset, samples, seed);
    let num_keys = initial_weights(&model, seed).len();
    let mut cfg = TrainConfig::new(algo, workers)
        .with_lr(lr)
        .with_batch_size(batch)
        .with_epochs(epochs)
        .with_seed(seed)
        .with_telemetry(telemetry.clone());
    if let Some(epoch) = depart_epoch {
        cfg = cfg.with_departure(id, epoch);
    }
    if start_epoch > 0 {
        cfg = cfg.with_start_epoch(start_epoch);
    }
    if let Some(dir) = &ckpt_dir {
        cfg = cfg.with_worker_checkpoints(dir, ckpt_every);
    }

    // ---- server-less collective deployment (--topology ring|tree|decentralized) ----
    // No parameter server exists: every replica binds its own --peers slot,
    // wires up the ring/tree over TCP, and synchronizes through allreduce
    // (or compressed neighbor gossip). The PS-only machinery — registration,
    // heartbeats, reconnect, chaos — has no server to talk to, so those
    // flags are rejected rather than silently ignored.
    if collective_mode {
        for (present, name) in [
            (!servers.is_empty(), "--servers"),
            (register, "--register"),
            (heartbeat_ms > 0, "--heartbeat-ms"),
            (shutdown, "--shutdown"),
            (
                reconnect.is_some(),
                "--reconnect-retries/--reconnect-backoff-ms",
            ),
            (chaos_kill_round.is_some(), "--chaos-kill-round"),
            (chaos_drop_sends.is_some(), "--chaos-drop-sends"),
            (depart_epoch.is_some(), "--depart-epoch"),
        ] {
            if present {
                console.error(format_args!(
                    "{name} talks to a parameter server; --topology {} runs without one",
                    topology.name()
                ));
                std::process::exit(2);
            }
        }
        let peers: Vec<String> = arg("peers")
            .unwrap_or_else(|| {
                console.error(format_args!(
                    "--topology {} needs --peers addr0,addr1,... (one per worker, \
                     every process listing the same addresses in the same order)",
                    topology.name()
                ));
                std::process::exit(2)
            })
            .split(',')
            .map(str::to_string)
            .collect();
        if peers.len() != workers || id >= workers {
            console.error(format_args!(
                "--peers lists {} addresses but --workers is {workers} (--id {id} \
                 must index into the peer list)",
                peers.len()
            ));
            std::process::exit(2);
        }
        cfg = cfg.with_topology(topology.clone());
        console.status(format_args!(
            "worker {id}/{workers}: {} train samples, topology {}, binding {}",
            train.len(),
            topology.name(),
            peers[id]
        ));
        // The collective's byte counters fold into the same trace stream
        // the PS path uses, so `--trace` shows per-frame wire accounting
        // for collective runs too.
        let stats = Arc::new(TrafficStats::with_telemetry(telemetry));
        let collective: Box<dyn Collective> = match &topology {
            Topology::Tree => Box::new(
                WireTree::connect(id, &peers, &NetConfig::default(), Arc::clone(&stats))
                    .unwrap_or_else(|e| {
                        console.error(format_args!("worker {id}: tree wiring failed: {e}"));
                        std::process::exit(1)
                    }),
            ),
            _ => Box::new(
                WireRing::connect(id, &peers, &NetConfig::default(), Arc::clone(&stats))
                    .unwrap_or_else(|e| {
                        console.error(format_args!("worker {id}: ring wiring failed: {e}"));
                        std::process::exit(1)
                    }),
            ),
        };
        let spec = model.clone();
        let report = match run_standalone_collective(
            cfg,
            id,
            move |rng| build_model(&spec, rng),
            &train,
            Some(test),
            collective,
        ) {
            Ok(report) => report,
            Err(e) => {
                console.error(format_args!("worker {id}: training failed: {e}"));
                std::process::exit(1);
            }
        };
        console.status(format_args!(
            "worker {id}: finished {} epochs; {} B sent / {} B received on the wire",
            report.len(),
            stats.bytes_sent(),
            stats.bytes_received()
        ));
        trace.flush();
        console.contract(format_args!("DONE worker {id}"));
        return;
    }

    if servers.is_empty() {
        console.error("missing --servers addr[,addr...]");
        std::process::exit(2);
    }
    console.status(format_args!(
        "worker {id}/{workers}: {} train samples, {num_keys} keys over {} shards",
        train.len(),
        servers.len()
    ));
    let cluster = NetCluster::connect_traced(&servers, num_keys, NetConfig::default(), telemetry)
        .expect("connect to servers");
    if let Some(n) = chaos_drop_sends {
        console.status(format_args!(
            "worker {id}: chaos — every shard connection dies after {n} sent frames"
        ));
        cluster.arm_chaos(FaultPlan::new().kill_after_sends(n));
    }
    // With reconnect armed the training client survives link drops by
    // redialing + re-registering + replaying (DESIGN.md §13); without
    // the flags this is the exact legacy single-dial client.
    let client: Box<dyn ParamClient> = match &reconnect {
        Some(rc) => Box::new(
            cluster
                .reconnecting_client(id, rc.clone())
                .expect("open shard connections"),
        ),
        None => cluster.client().expect("open shard connections"),
    };
    // `--register` / `--heartbeat-ms`: keep a shared handle so the
    // goodbye after training and the background heartbeats ride the
    // same ordered connections the pushes use (the server then sees
    // every push of the final round before the Leave).
    let (client, membership): (Box<dyn ParamClient>, Option<Arc<dyn ParamClient>>) =
        if register || heartbeat_ms > 0 {
            let shared: Arc<dyn ParamClient> = Arc::from(client);
            (Box::new(Arc::clone(&shared)), Some(shared))
        } else {
            (client, None)
        };
    let client: Box<dyn ParamClient> = if register {
        let shared = membership.as_ref().expect("register keeps a shared handle");
        let versions = shared.register(id).unwrap_or_else(|e| {
            console.error(format_args!("worker {id}: registration failed: {e}"));
            std::process::exit(1);
        });
        console.status(format_args!(
            "worker {id}: registered with {} shards at round {}",
            servers.len(),
            versions.iter().copied().min().unwrap_or(0)
        ));
        // A mid-run joiner counts rounds from zero while the server is
        // already at the acked versions: rebase every pull onto them.
        if versions.iter().any(|&v| v > 0) {
            Box::new(RebasedClient::new(client, versions))
        } else {
            client
        }
    } else {
        client
    };
    // Liveness emission for the servers' heartbeat-timeout eviction
    // sweep: a background thread, so a worker blocked in a long local
    // computation (or a slow pull) still proves it is alive. Sending is
    // mutex-serialised with the training pushes inside the client.
    let hb_stop = Arc::new(AtomicBool::new(false));
    let hb_thread = (heartbeat_ms > 0).then(|| {
        let shared = Arc::clone(
            membership
                .as_ref()
                .expect("heartbeat keeps a shared handle"),
        );
        let stop = Arc::clone(&hb_stop);
        std::thread::Builder::new()
            .name("heartbeat".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    // A failed send means the connection is gone; the
                    // training thread will surface the real error.
                    if shared.heartbeat(id).is_err() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(heartbeat_ms));
                }
            })
            .expect("spawn heartbeat thread")
    });
    let client: Box<dyn ParamClient> = match chaos_kill_round {
        Some(round) => {
            console.status(format_args!(
                "worker {id}: chaos — will die silently at round {round}"
            ));
            Box::new(FaultyClient::new(
                client,
                WorkerFault::KillAtRound { round },
                num_keys,
            ))
        }
        None => client,
    };

    let spec = model.clone();
    let report = match run_standalone_worker(
        cfg,
        id,
        move |rng| build_model(&spec, rng),
        &train,
        Some(test),
        client,
    ) {
        Ok(report) => report,
        Err(e) => {
            console.error(format_args!("worker {id}: training failed: {e}"));
            std::process::exit(1);
        }
    };
    console.status(format_args!(
        "worker {id}: finished {} epochs",
        report.len()
    ));
    if let Some(t) = hb_thread {
        hb_stop.store(true, Ordering::Relaxed);
        let _ = t.join();
    }
    // A scripted departure already said goodbye from inside the run.
    if register && depart_epoch.is_none() {
        if let Some(shared) = &membership {
            if let Err(e) = shared.leave(id) {
                console.error(format_args!("worker {id}: leave failed: {e}"));
                std::process::exit(1);
            }
            console.status(format_args!("worker {id}: left the membership"));
        }
    }

    if shutdown {
        Box::new(cluster).shutdown();
        console.status(format_args!(
            "worker {id}: sent shutdown to {} shards",
            servers.len()
        ));
    }
    trace.flush();
    console.contract(format_args!("DONE worker {id}"));
}
