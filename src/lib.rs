//! Workspace root crate for the CD-SGD reproduction.
//!
//! This crate re-exports the member crates so that examples and integration
//! tests can use a single import root. The actual implementation lives in
//! `crates/*`; see `DESIGN.md` for the system inventory.

pub mod deploy;

pub use cd_sgd as algo;
pub use cdsgd_compress as compress;
pub use cdsgd_data as data;
pub use cdsgd_nn as nn;
pub use cdsgd_ps as ps;
pub use cdsgd_simtime as simtime;
pub use cdsgd_tensor as tensor;
